//! Aggregators Location (§3.3) with memory-driven remerging (§3.2).
//!
//! For each file domain (partition-tree leaf, in offset order):
//!
//! 1. Collect the **candidate hosts** — nodes of the group's ranks whose
//!    requests intersect the domain, still hosting fewer than `N_ah`
//!    aggregators.
//! 2. Pick the host with **maximum available memory** (`Mem_avl`; here
//!    the largest per-process budget still unclaimed on that host).
//! 3. If `Mem_avl ≥ Mem_min`, the corresponding process becomes the
//!    domain's aggregator.
//! 4. Otherwise the domain is **remerged with the neighboring domain**
//!    (the partition-tree takeover of Figures 5a/5b) and the search
//!    repeats over the enlarged domain — "processes related hosts are
//!    repeatedly inspected ... until the one that satisfies the memory
//!    requirement is identified".
//!
//! When even the last remaining domain cannot satisfy `Mem_min`, the
//! constraint is relaxed and the best available host takes it anyway (the
//! collective must complete; it will just run with more rounds).

use crate::config::{CollectiveConfig, PlacementPolicy};
use crate::group::AggregationGroup;
use crate::memory::ProcMemory;
use crate::plan::AggregatorAssignment;
use crate::ptree::{NodeIdx, PartitionTree};
use crate::request::CollectiveRequest;
use mcio_cluster::{NodeId, ProcessMap, Rank};
use std::collections::{HashMap, HashSet};

/// Counters describing the decisions the placement loop made — how often
/// it had to fall back from the straightforward "pick the richest host"
/// path. Aggregated per plan into [`crate::plan::PlanDiag`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlacementDiag {
    /// Domains remerged into a neighbor because no candidate host met
    /// `Mem_min` (the partition-tree takeover of §3.2).
    pub remerges: usize,
    /// Last-standing domains placed only after relaxing `Mem_min` and
    /// the `N_ah` cap.
    pub relaxations: usize,
}

/// Assign aggregators to the file domains of one group's partition tree.
///
/// Consumes the tree (remerges mutate it); returns assignments in
/// file-domain offset order. Domains holding no requested data get no
/// aggregator.
pub fn place(
    group: &AggregationGroup,
    tree: &mut PartitionTree,
    req: &CollectiveRequest,
    map: &ProcessMap,
    mem: &ProcMemory,
    cfg: &CollectiveConfig,
) -> Vec<AggregatorAssignment> {
    place_with_diag(group, tree, req, map, mem, cfg).0
}

/// [`place`], also returning the fallback-decision counters.
pub fn place_with_diag(
    group: &AggregationGroup,
    tree: &mut PartitionTree,
    req: &CollectiveRequest,
    map: &ProcessMap,
    mem: &ProcMemory,
    cfg: &CollectiveConfig,
) -> (Vec<AggregatorAssignment>, PlacementDiag) {
    let mut diag = PlacementDiag::default();
    let mut used_aggs: HashSet<Rank> = HashSet::new();
    let mut host_count: HashMap<NodeId, usize> = HashMap::new();
    let mut assigned: HashMap<NodeIdx, AggregatorAssignment> = HashMap::new();

    // Always (re)scan for the first unassigned data-bearing leaf rather
    // than walking a monotone index: a remerge chain can deposit data
    // into an earlier zero-data leaf (a hole between two dense regions),
    // which must then be placed after all — an index walk would have
    // skipped it for good and lost its bytes.
    loop {
        let leaves = tree.leaves();
        let Some(leaf) = leaves
            .iter()
            .copied()
            .find(|l| !assigned.contains_key(l) && tree.data_bytes(*l) > 0)
        else {
            break;
        };
        let fd = tree.region(leaf);
        let ok = |budget: u64| match cfg.placement {
            PlacementPolicy::MemoryAware => budget >= cfg.mem_min,
            // Blind placement takes whatever it finds.
            PlacementPolicy::FirstCandidate => true,
        };
        match pick_host(group, &fd, req, map, mem, &used_aggs, &host_count, cfg) {
            Some((rank, node, budget)) if ok(budget) => {
                used_aggs.insert(rank);
                *host_count.entry(node).or_insert(0) += 1;
                assigned.insert(
                    leaf,
                    AggregatorAssignment {
                        rank,
                        fd,
                        buffer: budget.max(1),
                        data_bytes: tree.data_bytes(leaf),
                    },
                );
            }
            _ => {
                // Not enough memory anywhere (or every candidate host is
                // at its N_ah cap): remerge with the neighbor and retry.
                match tree.remerge(leaf) {
                    Some(absorbed) => {
                        diag.remerges += 1;
                        if let Some(a) = assigned.get_mut(&absorbed) {
                            // The neighbor already has an aggregator; it
                            // inherits the departed domain.
                            a.fd = tree.region(absorbed);
                            a.data_bytes = tree.data_bytes(absorbed);
                        }
                    }
                    None => {
                        // Last domain standing: relax Mem_min (and, if
                        // necessary, the N_ah cap) — the collective must
                        // complete.
                        diag.relaxations += 1;
                        let relaxed = pick_host(
                            group,
                            &fd,
                            req,
                            map,
                            mem,
                            &used_aggs,
                            &HashMap::new(),
                            &CollectiveConfig {
                                nah: usize::MAX,
                                ..cfg.clone()
                            },
                        )
                        .or_else(|| best_in_group(group, mem, &used_aggs, map));
                        let (rank, node, budget) = relaxed.expect("group has at least one rank");
                        used_aggs.insert(rank);
                        *host_count.entry(node).or_insert(0) += 1;
                        assigned.insert(
                            leaf,
                            AggregatorAssignment {
                                rank,
                                fd,
                                buffer: budget.max(1),
                                data_bytes: tree.data_bytes(leaf),
                            },
                        );
                    }
                }
            }
        }
    }

    // Emit in file-domain order.
    let aggs = tree
        .leaves()
        .into_iter()
        .filter_map(|l| assigned.remove(&l))
        .collect();
    (aggs, diag)
}

/// Best candidate `(rank, host, budget)` for a file domain, or `None`
/// when no host qualifies under the `N_ah` cap.
///
/// Candidates are the hosts of the group's ranks with data in `fd`; the
/// score of a host is the largest budget among its group ranks not yet
/// serving as aggregators (a rank aggregates at most one domain).
#[allow(clippy::too_many_arguments)]
fn pick_host(
    group: &AggregationGroup,
    fd: &mcio_pfs::Extent,
    req: &CollectiveRequest,
    map: &ProcessMap,
    mem: &ProcMemory,
    used_aggs: &HashSet<Rank>,
    host_count: &HashMap<NodeId, usize>,
    cfg: &CollectiveConfig,
) -> Option<(Rank, NodeId, u64)> {
    let mut candidate_hosts: Vec<NodeId> = group
        .ranks
        .iter()
        .filter(|&&r| req.ranks[r.0].bytes_in(fd) > 0)
        .map(|&r| map.node_of(r))
        .collect();
    candidate_hosts.sort_unstable();
    candidate_hosts.dedup();

    let mut best: Option<(Rank, NodeId, u64)> = None;
    for host in candidate_hosts {
        if host_count.get(&host).copied().unwrap_or(0) >= cfg.nah {
            continue;
        }
        // Mem_avl of the host: its best unclaimed process budget — or,
        // under blind placement, just the first unclaimed rank (ROMIO's
        // static habit).
        let eligible = map
            .ranks_on(host)
            .iter()
            .filter(|r| group.ranks.binary_search(r).is_ok() && !used_aggs.contains(r))
            .map(|&r| (mem.budget(r), r));
        let claim = match cfg.placement {
            PlacementPolicy::MemoryAware => {
                eligible.max_by_key(|&(b, r)| (b, std::cmp::Reverse(r.0)))
            }
            PlacementPolicy::FirstCandidate => eligible.min_by_key(|&(_, r)| r.0),
        };
        if let Some((budget, rank)) = claim {
            match cfg.placement {
                PlacementPolicy::MemoryAware => {
                    let better = match best {
                        None => true,
                        Some((_, _, b)) => budget > b,
                    };
                    if better {
                        best = Some((rank, host, budget));
                    }
                }
                // Blind: the first candidate host in node order wins.
                PlacementPolicy::FirstCandidate => {
                    if best.is_none() {
                        best = Some((rank, host, budget));
                    }
                }
            }
        }
    }
    best
}

/// Unconditional fallback: the group's highest-budget unclaimed rank.
fn best_in_group(
    group: &AggregationGroup,
    mem: &ProcMemory,
    used_aggs: &HashSet<Rank>,
    map: &ProcessMap,
) -> Option<(Rank, NodeId, u64)> {
    group
        .ranks
        .iter()
        .filter(|r| !used_aggs.contains(r))
        .map(|&r| (mem.budget(r), r))
        .max_by_key(|&(b, r)| (b, std::cmp::Reverse(r.0)))
        .map(|(b, r)| (r, map.node_of(r), b))
        .or_else(|| {
            // Every rank already aggregates: reuse the highest-budget one.
            group
                .ranks
                .iter()
                .map(|&r| (mem.budget(r), r))
                .max_by_key(|&(b, r)| (b, std::cmp::Reverse(r.0)))
                .map(|(b, r)| (r, map.node_of(r), b))
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::group;
    use mcio_cluster::Placement;
    use mcio_pfs::{Extent, Rw};

    /// 4 ranks on 2 nodes, serial 100-byte chunks.
    fn setup(budgets: Vec<u64>) -> (CollectiveRequest, ProcessMap, ProcMemory) {
        let req = CollectiveRequest::new(
            Rw::Write,
            (0..4u64).map(|r| vec![Extent::new(r * 100, 100)]).collect(),
        );
        let map = ProcessMap::new(4, 2, Placement::Block);
        let mem = ProcMemory::from_budgets(budgets);
        (req, map, mem)
    }

    fn build_tree(g: &AggregationGroup, msg_ind: u64) -> PartitionTree {
        let region = g.region.clone();
        let bytes_in = move |e: &Extent| {
            region
                .iter()
                .filter_map(|x| x.intersect(e))
                .map(|x| x.len)
                .sum()
        };
        PartitionTree::build(g.hull(), msg_ind, &bytes_in)
    }

    #[test]
    fn picks_memory_rich_host() {
        let (req, map, mem) = setup(vec![10, 10, 500, 500]);
        let groups = group::divide(&req, &map, u64::MAX);
        let mut tree = build_tree(&groups[0], u64::MAX); // single domain
        let cfg = CollectiveConfig::with_buffer(100).mem_min(50);
        let aggs = place(&groups[0], &mut tree, &req, &map, &mem, &cfg);
        assert_eq!(aggs.len(), 1);
        // Node 1 hosts the big budgets; rank 2 (first max) is chosen.
        assert_eq!(aggs[0].rank, Rank(2));
        assert_eq!(aggs[0].buffer, 500);
        assert_eq!(aggs[0].fd, Extent::new(0, 400));
        assert_eq!(aggs[0].data_bytes, 400);
    }

    #[test]
    fn two_domains_two_hosts() {
        let (req, map, mem) = setup(vec![300, 100, 300, 100]);
        let groups = group::divide(&req, &map, u64::MAX);
        let mut tree = build_tree(&groups[0], 200); // splits into two
        let cfg = CollectiveConfig::with_buffer(100).mem_min(50).msg_ind(200);
        let aggs = place(&groups[0], &mut tree, &req, &map, &mem, &cfg);
        assert_eq!(aggs.len(), 2);
        // Domain [0,200): candidates node0 (ranks 0,1) and ... rank data:
        // ranks 0,1 live there; node 0's best is rank 0 (300).
        assert_eq!(aggs[0].rank, Rank(0));
        // Domain [200,400): ranks 2,3 on node 1; best is rank 2.
        assert_eq!(aggs[1].rank, Rank(2));
    }

    #[test]
    fn nah_caps_aggregators_per_host() {
        // All data on node 0's ranks; node 0 budgets huge. With nah=1 the
        // second domain must go to node 1 (whose ranks also touch it).
        let req = CollectiveRequest::new(
            Rw::Write,
            vec![
                vec![Extent::new(0, 200)],
                vec![Extent::new(200, 200)],
                vec![Extent::new(100, 50)], // node 1 rank touches domain 0 & 1
                vec![Extent::new(250, 50)],
            ],
        );
        let map = ProcessMap::new(4, 2, Placement::Block);
        let mem = ProcMemory::from_budgets(vec![1000, 900, 10, 10]);
        let groups = group::divide(&req, &map, u64::MAX);
        let mut tree = build_tree(&groups[0], 250);
        let cfg = CollectiveConfig::with_buffer(100)
            .mem_min(5)
            .msg_ind(250)
            .nah(1);
        let aggs = place(&groups[0], &mut tree, &req, &map, &mem, &cfg);
        assert_eq!(aggs.len(), 2);
        assert_eq!(aggs[0].rank, Rank(0)); // node 0, budget 1000
                                           // Node 0 is at its cap; node 1 hosts the second domain.
        assert_eq!(map.node_of(aggs[1].rank), NodeId(1));
    }

    #[test]
    fn memory_starved_domain_remerges() {
        // Two domains; ranks of the second have < mem_min budgets, and
        // the first domain's host has plenty → the domains merge and the
        // rich rank aggregates everything.
        let req = CollectiveRequest::new(
            Rw::Write,
            vec![
                vec![Extent::new(0, 200)],
                vec![],
                vec![Extent::new(200, 200)],
                vec![],
            ],
        );
        let map = ProcessMap::new(4, 2, Placement::Block);
        let mem = ProcMemory::from_budgets(vec![1000, 1000, 20, 20]);
        let groups = group::divide(&req, &map, u64::MAX);
        let mut tree = build_tree(&groups[0], 200);
        assert_eq!(tree.leaf_count(), 2);
        let cfg = CollectiveConfig::with_buffer(100).mem_min(100).msg_ind(200);
        let aggs = place(&groups[0], &mut tree, &req, &map, &mem, &cfg);
        // Domain [200,400)'s only candidate host (node 1) is too poor;
        // it remerges into domain [0,200) whose aggregator (rank 0)
        // inherits the full region.
        assert_eq!(aggs.len(), 1);
        assert_eq!(aggs[0].rank, Rank(0));
        assert_eq!(aggs[0].fd, Extent::new(0, 400));
        assert_eq!(aggs[0].data_bytes, 400);
    }

    #[test]
    fn all_starved_relaxes_mem_min() {
        let (req, map, mem) = setup(vec![5, 5, 8, 6]);
        let groups = group::divide(&req, &map, u64::MAX);
        let mut tree = build_tree(&groups[0], 100);
        let cfg = CollectiveConfig::with_buffer(100).mem_min(1_000_000);
        let aggs = place(&groups[0], &mut tree, &req, &map, &mem, &cfg);
        // Everything merged into one domain, taken by the richest rank.
        assert_eq!(aggs.len(), 1);
        assert_eq!(aggs[0].rank, Rank(2));
        assert_eq!(aggs[0].fd, Extent::new(0, 400));
    }

    #[test]
    fn diag_counts_remerges_and_relaxations() {
        // The memory-starved two-domain layout: one remerge, no relaxing.
        let req = CollectiveRequest::new(
            Rw::Write,
            vec![
                vec![Extent::new(0, 200)],
                vec![],
                vec![Extent::new(200, 200)],
                vec![],
            ],
        );
        let map = ProcessMap::new(4, 2, Placement::Block);
        let mem = ProcMemory::from_budgets(vec![1000, 1000, 20, 20]);
        let groups = group::divide(&req, &map, u64::MAX);
        let mut tree = build_tree(&groups[0], 200);
        let cfg = CollectiveConfig::with_buffer(100).mem_min(100).msg_ind(200);
        let (aggs, diag) = place_with_diag(&groups[0], &mut tree, &req, &map, &mem, &cfg);
        assert_eq!(aggs.len(), 1);
        assert_eq!(diag.remerges, 1);
        assert_eq!(diag.relaxations, 0);

        // Everyone starved: the chain of remerges ends in one relaxation.
        let (req, map, mem) = setup(vec![5, 5, 8, 6]);
        let groups = group::divide(&req, &map, u64::MAX);
        let mut tree = build_tree(&groups[0], 100);
        let cfg = CollectiveConfig::with_buffer(100).mem_min(1_000_000);
        let (aggs, diag) = place_with_diag(&groups[0], &mut tree, &req, &map, &mem, &cfg);
        assert_eq!(aggs.len(), 1);
        assert!(diag.remerges >= 1);
        assert_eq!(diag.relaxations, 1);
    }

    #[test]
    fn empty_domains_get_no_aggregator() {
        // Data only in [0,100) but hull stretches to 400 via rank 3.
        let req = CollectiveRequest::new(
            Rw::Write,
            vec![
                vec![Extent::new(0, 100)],
                vec![],
                vec![],
                vec![Extent::new(300, 100)],
            ],
        );
        let map = ProcessMap::new(4, 2, Placement::Block);
        let mem = ProcMemory::from_budgets(vec![100; 4]);
        let groups = group::divide(&req, &map, u64::MAX);
        let mut tree = build_tree(&groups[0], 100);
        let cfg = CollectiveConfig::with_buffer(100).mem_min(0).msg_ind(100);
        let aggs = place(&groups[0], &mut tree, &req, &map, &mem, &cfg);
        // Middle (hole) domains produce no aggregators.
        assert!(aggs.len() <= 2, "got {}", aggs.len());
        let covered: u64 = aggs.iter().map(|a| a.data_bytes).sum();
        assert_eq!(covered, 200);
    }

    #[test]
    fn hole_leaf_filled_by_remerge_still_gets_placed() {
        // Two dense regions separated by a large hole, all on one node
        // with nah so small that most domains starve. The starved
        // right-side domains remerge leftward *through the hole leaf*:
        // the hole gains their data and must then be placed (or merged
        // onward) rather than staying silently skipped.
        let per_rank: Vec<Vec<Extent>> = (0..4u64)
            .map(|r| {
                vec![
                    Extent::new(r * 100, 100),
                    Extent::new(10_000 + r * 100, 100),
                ]
            })
            .collect();
        let req = CollectiveRequest::new(Rw::Write, per_rank);
        let map = ProcessMap::new(4, 1, Placement::Block);
        let mem = ProcMemory::from_budgets(vec![100; 4]);
        let groups = group::divide(&req, &map, u64::MAX);
        assert_eq!(groups.len(), 1);
        let mut tree = build_tree(&groups[0], 100);
        let cfg = CollectiveConfig::with_buffer(100)
            .mem_min(0)
            .msg_ind(100)
            .nah(2);
        let aggs = place(&groups[0], &mut tree, &req, &map, &mem, &cfg);
        let covered: u64 = aggs.iter().map(|a| a.data_bytes).sum();
        assert_eq!(covered, 800, "every requested byte has an aggregator");
        // Domains still tile without overlap in offset order.
        for w in aggs.windows(2) {
            assert!(w[0].fd.end() <= w[1].fd.offset);
        }
    }

    #[test]
    fn distinct_ranks_per_domain() {
        // More domains than any rule would break: each aggregator rank is
        // used at most once.
        let (req, map, mem) = setup(vec![100, 90, 80, 70]);
        let groups = group::divide(&req, &map, u64::MAX);
        let mut tree = build_tree(&groups[0], 100);
        let cfg = CollectiveConfig::with_buffer(100)
            .mem_min(0)
            .msg_ind(100)
            .nah(2);
        let aggs = place(&groups[0], &mut tree, &req, &map, &mem, &cfg);
        let mut ranks: Vec<Rank> = aggs.iter().map(|a| a.rank).collect();
        ranks.sort_unstable();
        ranks.dedup();
        assert_eq!(ranks.len(), aggs.len());
    }
}
