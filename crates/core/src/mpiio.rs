//! A miniature MPI-IO layer: `MPI_File_write_all` / `read_all` running
//! the complete collective protocol **distributedly** over `mcio-simpi`.
//!
//! This is the shape of ROMIO itself: every rank flattens its own file
//! view, the ranks **allgather** their offset/length lists (the paper's
//! "each process first analyzes its own I/O request respectively and
//! let the aggregators know the entire aggregated I/O requests from all
//! processes"), every rank then *independently computes the identical
//! plan* (both planners are deterministic), and executes its own role —
//! sending its data slices, aggregating windows if it was chosen, and
//! touching the shared file. No rank ever sees another rank's buffer
//! except through messages.
//!
//! Views must be monotone (file offsets nondecreasing in data order), as
//! MPI requires of file views.

use crate::config::CollectiveConfig;
use crate::memory::ProcMemory;
use crate::plan::{CollectivePlan, SyncMode};
use crate::request::{CollectiveRequest, RankRequest};
use crate::{mcio, twophase, Strategy};
use mcio_cluster::{ProcessMap, Rank};
use mcio_pfs::{Extent, Rw, SparseFile};
use mcio_simpi::collectives::{decode_u64s, encode_u64s};
use mcio_simpi::{Comm, FileView};
use parking_lot::Mutex;
use std::sync::Arc;

/// Errors of the collective file layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IoError {
    /// The caller's buffer length is inconsistent with the view mapping.
    ShortBuffer {
        /// Bytes the operation needed.
        needed: u64,
        /// Bytes the buffer held.
        got: u64,
    },
    /// A plan failed its structural check (a planner bug; never expected).
    BadPlan(String),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::ShortBuffer { needed, got } => {
                write!(f, "buffer holds {got} bytes, operation needs {needed}")
            }
            IoError::BadPlan(e) => write!(f, "planner produced an invalid plan: {e}"),
        }
    }
}

impl std::error::Error for IoError {}

/// A collectively opened file handle, one per rank.
pub struct CollFile {
    comm: Comm,
    file: Arc<Mutex<SparseFile>>,
    map: ProcessMap,
    mem: ProcMemory,
    cfg: CollectiveConfig,
    strategy: Strategy,
    view: FileView,
    /// Per-rank independent file pointer, in *view data* space.
    pointer: u64,
    /// Collective-call sequence number, advanced identically on every
    /// rank (collective calls occur in the same order everywhere); used
    /// to partition the tag space between consecutive collectives.
    epoch: u64,
}

impl CollFile {
    /// Collectively open a shared file. All arguments must be identical
    /// on every rank (as MPI requires of `MPI_File_open` parameters).
    pub fn open(
        comm: Comm,
        file: Arc<Mutex<SparseFile>>,
        map: ProcessMap,
        mem: ProcMemory,
        cfg: CollectiveConfig,
        strategy: Strategy,
    ) -> Self {
        assert_eq!(comm.size(), map.nranks(), "communicator/topology mismatch");
        assert_eq!(comm.size(), mem.nranks(), "communicator/memory mismatch");
        CollFile {
            comm,
            file,
            map,
            mem,
            cfg,
            strategy,
            view: FileView::contiguous(0),
            pointer: 0,
            epoch: 0,
        }
    }

    /// Set this rank's file view and reset the file pointer
    /// (`MPI_File_set_view`).
    pub fn set_view(&mut self, view: FileView) {
        self.view = view;
        self.pointer = 0;
    }

    /// The rank of this handle.
    pub fn rank(&self) -> usize {
        self.comm.rank()
    }

    /// Collective write of `buf` at the current per-rank file pointer;
    /// advances the pointer (`MPI_File_write_all`).
    pub fn write_all(&mut self, buf: &[u8]) -> Result<(), IoError> {
        let at = self.pointer;
        self.pointer += buf.len() as u64;
        self.write_at_all(at, buf)
    }

    /// Collective read into `buf` at the current pointer; advances it
    /// (`MPI_File_read_all`).
    pub fn read_all(&mut self, buf: &mut [u8]) -> Result<(), IoError> {
        let at = self.pointer;
        self.pointer += buf.len() as u64;
        self.read_at_all(at, buf)
    }

    /// Collective write at an explicit view-relative offset
    /// (`MPI_File_write_at_all`). Ranks may pass different lengths
    /// (including zero).
    pub fn write_at_all(&mut self, data_offset: u64, buf: &[u8]) -> Result<(), IoError> {
        let (req, mine) = self.exchange_requests(Rw::Write, data_offset, buf.len() as u64);
        let plan = self.plan(&req)?;
        self.execute_write(&plan, &mine, buf);
        self.epoch += 1;
        Ok(())
    }

    /// Collective read at an explicit view-relative offset
    /// (`MPI_File_read_at_all`).
    pub fn read_at_all(&mut self, data_offset: u64, buf: &mut [u8]) -> Result<(), IoError> {
        let (req, mine) = self.exchange_requests(Rw::Read, data_offset, buf.len() as u64);
        let plan = self.plan(&req)?;
        self.execute_read(&plan, &mine, buf);
        self.epoch += 1;
        Ok(())
    }

    /// Phase 0 of two-phase I/O: flatten the local view and allgather
    /// everyone's offset/length lists. Returns the (identical on every
    /// rank) collective request and this rank's own extent list in data
    /// order.
    fn exchange_requests(
        &self,
        rw: Rw,
        data_offset: u64,
        nbytes: u64,
    ) -> (CollectiveRequest, Vec<Extent>) {
        let mine: Vec<Extent> = self
            .view
            .segments(data_offset, nbytes)
            .into_iter()
            .map(|s| Extent::new(s.offset, s.len))
            .collect();
        let mut flat = Vec::with_capacity(mine.len() * 2);
        for e in &mine {
            flat.push(e.offset);
            flat.push(e.len);
        }
        let all = self.comm.allgather(encode_u64s(&flat));
        let ranks = all
            .into_iter()
            .enumerate()
            .map(|(r, bytes)| {
                let nums = decode_u64s(&bytes);
                let extents = nums
                    .chunks_exact(2)
                    .map(|c| Extent::new(c[0], c[1]))
                    .collect();
                RankRequest::new(Rank(r), extents)
            })
            .collect();
        (CollectiveRequest { rw, ranks }, mine)
    }

    /// Every rank computes the same plan from the same inputs.
    fn plan(&self, req: &CollectiveRequest) -> Result<CollectivePlan, IoError> {
        let plan = match self.strategy {
            Strategy::TwoPhase => twophase::plan(req, &self.map, &self.mem, &self.cfg),
            Strategy::MemoryConscious => mcio::plan(req, &self.map, &self.mem, &self.cfg),
        };
        plan.check(req).map_err(IoError::BadPlan)?;
        Ok(plan)
    }

    /// Message tag for (epoch, group, round).
    fn tag(&self, group: usize, round: usize) -> u64 {
        (self.epoch << 40) | ((group as u64) << 20) | round as u64
    }

    /// Copy the user-buffer slice backing file extent `e` out of `buf`.
    ///
    /// `mine` is this rank's extent list in data order with `prefix[i]`
    /// = data bytes before extent `i`; monotone views make data order
    /// equal offset order, so a binary search locates the extent.
    fn slice_of<'a>(mine: &[Extent], prefix: &[u64], e: &Extent, buf: &'a [u8]) -> &'a [u8] {
        let i = mine.partition_point(|x| x.end() <= e.offset);
        let host = &mine[i];
        debug_assert!(
            host.contains_extent(e),
            "message extent {e} not within this rank's request"
        );
        let start = (prefix[i] + (e.offset - host.offset)) as usize;
        &buf[start..start + e.len as usize]
    }

    fn execute_write(&self, plan: &CollectivePlan, mine: &[Extent], buf: &[u8]) {
        let me = Rank(self.comm.rank());
        let prefix = prefix_sums(mine);
        for (gi, g) in plan.groups.iter().enumerate() {
            for (ri, round) in g.rounds.iter().enumerate() {
                let t = self.tag(gi, ri);
                for m in round.messages.iter().filter(|m| m.src == me) {
                    let mut payload = Vec::with_capacity(m.bytes() as usize);
                    for e in &m.extents {
                        payload.extend_from_slice(Self::slice_of(mine, &prefix, e, buf));
                    }
                    self.comm.send(m.dst.0, t, payload);
                }
                for io in round.ios.iter().filter(|io| io.agg == me) {
                    let w = io.window;
                    let mut wbuf = vec![0u8; w.len as usize];
                    for m in round.messages.iter().filter(|m| m.dst == me) {
                        let payload = self.comm.recv(m.src.0, t);
                        let mut at = 0usize;
                        for e in &m.extents {
                            let dst = (e.offset - w.offset) as usize;
                            wbuf[dst..dst + e.len as usize]
                                .copy_from_slice(&payload[at..at + e.len as usize]);
                            at += e.len as usize;
                        }
                    }
                    let mut file = self.file.lock();
                    for e in &io.extents {
                        let at = (e.offset - w.offset) as usize;
                        file.write_at(e.offset, &wbuf[at..at + e.len as usize]);
                    }
                }
                if plan.sync == SyncMode::Global {
                    self.comm.barrier();
                }
            }
        }
        // A closing barrier keeps the collective call collective: no
        // rank returns before the data of slower groups is in the file.
        self.comm.barrier();
    }

    fn execute_read(&self, plan: &CollectivePlan, mine: &[Extent], buf: &mut [u8]) {
        let me = Rank(self.comm.rank());
        let prefix = prefix_sums(mine);
        for (gi, g) in plan.groups.iter().enumerate() {
            for (ri, round) in g.rounds.iter().enumerate() {
                let t = self.tag(gi, ri);
                for io in round.ios.iter().filter(|io| io.agg == me) {
                    let w = io.window;
                    let mut wbuf = vec![0u8; w.len as usize];
                    {
                        let file = self.file.lock();
                        for e in &io.extents {
                            let at = (e.offset - w.offset) as usize;
                            file.read_at(e.offset, &mut wbuf[at..at + e.len as usize]);
                        }
                    }
                    for m in round.messages.iter().filter(|m| m.src == me) {
                        let mut payload = Vec::with_capacity(m.bytes() as usize);
                        for e in &m.extents {
                            let at = (e.offset - w.offset) as usize;
                            payload.extend_from_slice(&wbuf[at..at + e.len as usize]);
                        }
                        self.comm.send(m.dst.0, t, payload);
                    }
                }
                for m in round.messages.iter().filter(|m| m.dst == me) {
                    let payload = self.comm.recv(m.src.0, t);
                    let mut at = 0usize;
                    for e in &m.extents {
                        let i = mine.partition_point(|x| x.end() <= e.offset);
                        let host = &mine[i];
                        let start = (prefix[i] + (e.offset - host.offset)) as usize;
                        buf[start..start + e.len as usize]
                            .copy_from_slice(&payload[at..at + e.len as usize]);
                        at += e.len as usize;
                    }
                }
                if plan.sync == SyncMode::Global {
                    self.comm.barrier();
                }
            }
        }
        self.comm.barrier();
    }
}

/// `prefix[i]` = total bytes of `extents[..i]`.
fn prefix_sums(extents: &[Extent]) -> Vec<u64> {
    let mut out = Vec::with_capacity(extents.len());
    let mut acc = 0u64;
    for e in extents {
        out.push(acc);
        acc += e.len;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcio_cluster::Placement;
    use mcio_simpi::{runtime::run, Datatype};

    fn shared_file() -> Arc<Mutex<SparseFile>> {
        Arc::new(Mutex::new(SparseFile::new()))
    }

    /// Each rank writes `count` bytes of a distinctive pattern through a
    /// strided view; then reads back collectively and checks.
    fn strided_roundtrip(strategy: Strategy) {
        let nranks = 6;
        let map = ProcessMap::new(nranks, 3, Placement::Block);
        let mem = ProcMemory::normal(nranks, 4096, 0.5, 8);
        let cfg = CollectiveConfig::with_buffer(4096)
            .msg_group(30_000)
            .msg_ind(15_000)
            .mem_min(0);
        let file = shared_file();
        let count = 10_000u64;

        let file2 = Arc::clone(&file);
        run(nranks, move |comm| {
            let rank = comm.rank();
            let mut fh = CollFile::open(
                comm,
                Arc::clone(&file2),
                map.clone(),
                mem.clone(),
                cfg.clone(),
                strategy,
            );
            // Interleaved view: 500-byte blocks every nranks*500 bytes.
            let ft = Datatype::resized(Datatype::bytes(500), 500 * nranks as u64);
            fh.set_view(FileView::new(500 * rank as u64, ft));
            let data: Vec<u8> = (0..count).map(|i| (i as u8) ^ (rank as u8) << 4).collect();
            fh.write_all(&data).expect("collective write");

            // Read it back through the same view.
            fh.set_view(FileView::new(
                500 * rank as u64,
                Datatype::resized(Datatype::bytes(500), 500 * nranks as u64),
            ));
            let mut back = vec![0u8; count as usize];
            fh.read_all(&mut back).expect("collective read");
            assert_eq!(back, data, "rank {rank} read back different bytes");
        });

        // The file is fully tiled with every rank's pattern.
        let file = file.lock();
        assert_eq!(file.len(), count * nranks as u64);
    }

    #[test]
    fn write_read_all_twophase() {
        strided_roundtrip(Strategy::TwoPhase);
    }

    #[test]
    fn write_read_all_memory_conscious() {
        strided_roundtrip(Strategy::MemoryConscious);
    }

    #[test]
    fn file_pointer_advances() {
        let nranks = 4;
        let map = ProcessMap::new(nranks, 2, Placement::Block);
        let mem = ProcMemory::uniform(nranks, 1 << 16);
        let cfg = CollectiveConfig::with_buffer(1 << 16).mem_min(0);
        let file = shared_file();
        let file2 = Arc::clone(&file);
        run(nranks, move |comm| {
            let rank = comm.rank();
            let mut fh = CollFile::open(
                comm,
                Arc::clone(&file2),
                map.clone(),
                mem.clone(),
                cfg.clone(),
                Strategy::TwoPhase,
            );
            // Contiguous per-rank lanes of 2000 bytes.
            fh.set_view(FileView::contiguous(2000 * rank as u64));
            // Two successive collective writes land back-to-back.
            fh.write_all(&[rank as u8; 1200]).unwrap();
            fh.write_all(&[0xA0 | rank as u8; 800]).unwrap();
        });
        let file = file.lock();
        for rank in 0..nranks {
            let lane = file.read_vec(2000 * rank as u64, 2000);
            assert!(lane[..1200].iter().all(|&b| b == rank as u8));
            assert!(lane[1200..].iter().all(|&b| b == 0xA0 | rank as u8));
        }
    }

    #[test]
    fn unequal_lengths_including_zero() {
        let nranks = 4;
        let map = ProcessMap::new(nranks, 2, Placement::Block);
        let mem = ProcMemory::uniform(nranks, 1 << 14);
        let cfg = CollectiveConfig::with_buffer(1 << 14).mem_min(0);
        let file = shared_file();
        let file2 = Arc::clone(&file);
        run(nranks, move |comm| {
            let rank = comm.rank();
            let mut fh = CollFile::open(
                comm,
                Arc::clone(&file2),
                map.clone(),
                mem.clone(),
                cfg.clone(),
                Strategy::MemoryConscious,
            );
            fh.set_view(FileView::contiguous(10_000 * rank as u64));
            // Rank r writes r*1000 bytes; rank 0 writes nothing but must
            // still participate in the collective.
            let data = vec![0x30 + rank as u8; rank * 1000];
            fh.write_all(&data).unwrap();
        });
        let file = file.lock();
        for rank in 1..nranks {
            let lane = file.read_vec(10_000 * rank as u64, rank * 1000);
            assert!(lane.iter().all(|&b| b == 0x30 + rank as u8), "rank {rank}");
        }
    }

    #[test]
    fn subarray_view_collective() {
        // A 2D array: 8x8 bytes, four ranks each owning a 4x4 quadrant.
        let nranks = 4;
        let map = ProcessMap::new(nranks, 2, Placement::Block);
        let mem = ProcMemory::uniform(nranks, 1 << 12);
        let cfg = CollectiveConfig::with_buffer(1 << 12).mem_min(0);
        let file = shared_file();
        let file2 = Arc::clone(&file);
        run(nranks, move |comm| {
            let rank = comm.rank();
            let (si, sj) = (rank / 2, rank % 2);
            let ft = Datatype::subarray(
                vec![8, 8],
                vec![4, 4],
                vec![si as u64 * 4, sj as u64 * 4],
                1,
            );
            let mut fh = CollFile::open(
                comm,
                Arc::clone(&file2),
                map.clone(),
                mem.clone(),
                cfg.clone(),
                Strategy::TwoPhase,
            );
            fh.set_view(FileView::new(0, ft));
            fh.write_all(&[0x10 * (rank as u8 + 1); 16]).unwrap();
        });
        // Check the quadrant layout in row-major order.
        let file = file.lock();
        let grid = file.read_vec(0, 64);
        for (pos, &b) in grid.iter().enumerate() {
            let (i, j) = (pos / 8, pos % 8);
            let owner = (i / 4) * 2 + j / 4;
            assert_eq!(b, 0x10 * (owner as u8 + 1), "cell ({i},{j})");
        }
    }

    #[test]
    fn epochs_keep_collectives_apart() {
        // Back-to-back collectives with different shapes must not
        // cross-match messages (the epoch tag partition).
        let nranks = 3;
        let map = ProcessMap::new(nranks, 3, Placement::Block);
        let mem = ProcMemory::uniform(nranks, 512);
        let cfg = CollectiveConfig::with_buffer(512).mem_min(0);
        let file = shared_file();
        let file2 = Arc::clone(&file);
        run(nranks, move |comm| {
            let rank = comm.rank();
            let mut fh = CollFile::open(
                comm,
                Arc::clone(&file2),
                map.clone(),
                mem.clone(),
                cfg.clone(),
                Strategy::TwoPhase,
            );
            fh.set_view(FileView::contiguous(3000 * rank as u64));
            for round in 0..5u8 {
                fh.write_all(&[round * 7 + rank as u8; 600]).unwrap();
            }
            let mut back = vec![0u8; 3000];
            fh.read_at_all(0, &mut back).unwrap();
            for round in 0..5usize {
                assert!(back[round * 600..(round + 1) * 600]
                    .iter()
                    .all(|&b| b == round as u8 * 7 + rank as u8));
            }
        });
    }
}
