//! Resilient collective execution under an injected fault plan.
//!
//! [`simulate_faulted`] runs a [`CollectivePlan`] against a
//! [`mcio_faults::FaultSpec`] and makes the execution *survive* it:
//!
//! * **Retry/backoff** — transient per-request OST failures are absorbed
//!   inside the PFS client as bounded, seeded retry chains (see
//!   [`mcio_pfs::Pfs::apply_faults`]); nothing to do here beyond
//!   surfacing the counts.
//! * **Aggregator failover** — an `agg_crash(host, t)` that lands while
//!   rounds using an aggregator on that host are still in flight
//!   triggers a memory-aware re-selection (same scoring as
//!   [`crate::placement`]: largest budget, lowest rank breaks ties) and
//!   re-targets the affected rounds' messages and I/O to the
//!   replacement. The first re-targeted round of each group is gated
//!   behind a fixed re-coordination latency ([`FAILOVER_LATENCY`]).
//! * **Graceful degradation** — when the replacement's buffer (or a
//!   `mem_shock`-shrunk buffer) cannot hold an affected window, the
//!   window is re-rounded: split at exact sub-window boundaries into
//!   extra rounds appended to the group, instead of aborting. Message
//!   extents are split at the same boundaries, so byte conservation and
//!   leaf coverage are preserved exactly ([`CollectivePlan::check`]
//!   still passes on the transformed plan).
//!
//! The two-phase baseline gets **no** failover: a crash that hits one of
//! its aggregators mid-collective marks the run `completed = false`
//! (the paper's MC-CIO pipeline is the one with a re-selection path).
//!
//! Fault attribution rides the unified trace as process 3 (`faults`)
//! and the `faults.*` metrics; `mcio-analyze` folds the resilience
//! lanes into a fifth critical-path bucket (`retry/degraded`).
//!
//! # Semantics of a crash
//!
//! `agg_crash` models the death of the *aggregator role* on a host (an
//! OOM-killed aggregation thread, a wedged buffer pool) — the compute
//! ranks on that host keep their data and continue as producers or
//! consumers. Recovery is therefore re-selection plus re-routing, not
//! data reconstruction.
//!
//! # Determinism
//!
//! Both passes are ordinary deterministic DES runs; every stochastic
//! choice (transient failures, backoff jitter) hashes the
//! [`mcio_faults::FaultSpec::seed`]. Two runs with identical inputs
//! produce byte-identical traces and reports.

use crate::adaptive::{
    observed_granularity, plan_deferrals, select_contended_replacement, AdaptiveOutcome,
    AdaptivePolicy, SignalSnapshot,
};
use crate::config::Strategy;
use crate::exec_sim::{
    simulate_inner, Exchange, FaultGate, FaultInjection, Observe, Pipeline, ReplanMark,
    RoundWindow, SimRun, TimingReport,
};
use crate::memory::ProcMemory;
use crate::plan::{AggregatorAssignment, CollectivePlan, GroupPlan, IoOp, Round, SyncMode};
use crate::tuner::{retune_from_signals, TunedParams};
use mcio_cluster::spec::ClusterSpec;
use mcio_cluster::{NodeId, ProcessMap, Rank};
use mcio_des::{SimDuration, SimTime};
use mcio_faults::{FaultEvent, FaultSpec};
use mcio_pfs::{Extent, Rw};

/// Fixed failure-detection + re-coordination latency charged before the
/// first re-targeted round of a group may start after a crash. Models
/// heartbeat timeout plus re-selection consensus; deliberately a
/// constant so faulted runs stay byte-deterministic.
pub const FAILOVER_LATENCY: SimDuration = SimDuration::from_micros(500);

/// What a faulted run produced, beyond the plain timing report.
#[derive(Debug)]
pub struct FaultOutcome {
    /// Timing of the (possibly transformed) plan under injection.
    pub report: TimingReport,
    /// Unified Chrome trace (pid 3 = fault lanes) when requested.
    pub trace: Option<String>,
    /// Whether the collective delivered every byte. `false` only when a
    /// structural fault hit a plan with no recovery path (two-phase
    /// under `agg_crash`, or no replacement candidate).
    pub completed: bool,
    /// Aggregator failovers performed.
    pub failovers: usize,
    /// Extra rounds created by graceful degradation.
    pub degraded_rounds: usize,
    /// Total transient-failure retries absorbed by the PFS client.
    pub retries: u64,
    /// Requests whose retry budget was exhausted (completed out-of-band;
    /// see `docs/robustness.md`).
    pub retry_exhausted: u64,
    /// The plan that actually executed: the input plan with failover
    /// re-targeting and degradation re-rounding applied. Feeding it to
    /// [`crate::exec_fn::execute_write`] yields bytes identical to the
    /// fault-free plan whenever `completed` is true.
    pub executed_plan: CollectivePlan,
    /// What the closed-loop controller did (all-zero under
    /// [`AdaptivePolicy::Off`]).
    pub adaptive: AdaptiveOutcome,
}

/// Simulate `plan` under the fault plan `fspec`, surviving what can be
/// survived. `mem` drives replacement-aggregator selection (same budget
/// data the planner used). Equivalent to [`simulate_adaptive`] with
/// [`AdaptivePolicy::Off`]: the static resilience paths only.
#[allow(clippy::too_many_arguments)]
pub fn simulate_faulted(
    plan: &CollectivePlan,
    map: &ProcessMap,
    spec: &ClusterSpec,
    mem: &ProcMemory,
    pipeline: Pipeline,
    exchange: Exchange,
    fspec: &FaultSpec,
    obs: Observe<'_>,
) -> FaultOutcome {
    simulate_adaptive(
        plan,
        map,
        spec,
        mem,
        pipeline,
        exchange,
        fspec,
        AdaptivePolicy::Off,
        obs,
    )
}

/// [`simulate_faulted`] with the closed-loop controller enabled: between
/// the probe pass and the final pass, [`SignalSnapshot`]-driven
/// decisions re-tune the round granularity, demote aggregators off
/// memory-shocked nodes (contention-aware three-tier re-selection), and
/// defer rounds past degraded OST windows when the probe says waiting
/// beats crawling. The controller only acts on the MC-CIO strategy —
/// the two-phase baseline stays static by design, mirroring its lack of
/// a failover path — and only when `fspec` is non-empty, so
/// [`AdaptivePolicy::Off`] (and any run the controller skips) is
/// byte-identical to the static path.
#[allow(clippy::too_many_arguments)]
pub fn simulate_adaptive(
    plan: &CollectivePlan,
    map: &ProcessMap,
    spec: &ClusterSpec,
    mem: &ProcMemory,
    pipeline: Pipeline,
    exchange: Exchange,
    fspec: &FaultSpec,
    policy: AdaptivePolicy,
    obs: Observe<'_>,
) -> FaultOutcome {
    let structural = fspec
        .events
        .iter()
        .any(|e| matches!(e, FaultEvent::AggCrash { .. } | FaultEvent::MemShock { .. }));
    let adaptive = !policy.is_off() && !fspec.is_empty() && plan.strategy != Strategy::TwoPhase;

    let mut xplan = plan.clone();
    let mut gates: Vec<FaultGate> = Vec::new();
    let mut degraded: Vec<(Option<usize>, usize)> = Vec::new();
    let mut replans: Vec<ReplanMark> = Vec::new();
    let mut completed = true;
    let mut failovers = 0usize;
    let mut adaptive_out = AdaptiveOutcome {
        policy,
        ..AdaptiveOutcome::default()
    };

    // Pass 1: OST + transient faults only, no recovery — yields the
    // absolute windows of every round slot, i.e. which rounds were
    // still in flight when each structural event struck, and the
    // degraded timeline the controller compares against nominal.
    let pass1 = (structural || adaptive).then(|| {
        let probe = FaultInjection {
            spec: Some(fspec),
            ..FaultInjection::default()
        };
        simulate_inner(
            plan,
            map,
            spec,
            pipeline,
            exchange,
            Observe {
                engine: obs.engine,
                ..Observe::default()
            },
            Some(&probe),
        )
    });

    if structural {
        let pass1 = pass1.as_ref().expect("probe ran");

        for &(host, at) in &fspec.agg_crashes() {
            let at_ns = at.saturating_since(SimTime::ZERO).as_nanos();
            for (gi, g) in xplan.groups.iter_mut().enumerate() {
                let crashed: Vec<Rank> = g
                    .aggregators
                    .iter()
                    .map(|a| a.rank)
                    .filter(|&r| map.node_of(r) == NodeId(host))
                    .collect();
                for cr in crashed {
                    let affected =
                        affected_rounds(g, plan.rw, cr, &pass1.windows, plan.sync, gi, at_ns);
                    if affected.is_empty() {
                        continue;
                    }
                    if plan.strategy == Strategy::TwoPhase {
                        // No failover path in the baseline.
                        completed = false;
                        continue;
                    }
                    let Some((repl, repl_buffer)) = select_replacement(g, map, mem, NodeId(host))
                    else {
                        completed = false;
                        continue;
                    };
                    if !g.aggregators.iter().any(|a| a.rank == repl) {
                        let (fd, data_bytes) = g
                            .aggregators
                            .iter()
                            .find(|a| a.rank == cr)
                            .map(|a| (a.fd, a.data_bytes))
                            .unwrap_or((Extent::EMPTY, 0));
                        g.aggregators.push(AggregatorAssignment {
                            rank: repl,
                            fd,
                            buffer: repl_buffer,
                            data_bytes,
                        });
                    }
                    failovers += 1;
                    let gkey = group_key(plan.sync, gi);
                    let first = *affected.first().expect("non-empty");
                    if !gates.iter().any(|gt| gt.group == gkey && gt.round == first) {
                        gates.push(FaultGate {
                            group: gkey,
                            round: first,
                            from: at,
                            release: at + FAILOVER_LATENCY,
                            label: format!("failover.g{gi}.r{first}"),
                            adaptive: false,
                        });
                    }
                    for r in affected {
                        retarget_round(&mut g.rounds[r], plan.rw, cr, repl);
                        for appended in split_oversized(g, r, repl, repl_buffer, plan.rw) {
                            degraded.push((gkey, appended));
                        }
                    }
                }
            }
        }
    }

    // Closed-loop adaptation: sample the degradation signals, decide
    // behind the hysteresis band, actuate as plan transforms + gates.
    // Runs between the crash-failover transform above and the
    // structural mem-shock re-rounding below: an aggregator this block
    // demotes off a shocked node no longer needs its future rounds
    // split at the shrunken buffer.
    if adaptive {
        let pass1 = pass1.as_ref().expect("probe ran");
        // Nominal timeline of the same plan: the deferral comparator
        // and the sampling horizon.
        let clean = simulate_inner(
            plan,
            map,
            spec,
            pipeline,
            exchange,
            Observe {
                engine: obs.engine,
                ..Observe::default()
            },
            None,
        );
        let horizon = clean.report.elapsed.as_nanos();
        let signals = SignalSnapshot::sample(fspec, spec.io_servers, horizon, 0.0);
        adaptive_out.severity = signals.severity();
        if adaptive_out.severity > policy.dead_band() {
            // (1) Re-tune the observed round granularity. The tuned
            // group size caps how coarse adaptively re-split rounds may
            // be (split boundaries stay exact chunk boundaries).
            let gran = observed_granularity(&xplan);
            let base = TunedParams {
                msg_ind: (gran / 8).max(1),
                nah: 1,
                msg_group: gran,
            };
            let tuned = retune_from_signals(base, &signals, policy);
            if tuned.msg_group < base.msg_group {
                adaptive_out.retuned = Some((base.msg_group, tuned.msg_group));
                replans.push(ReplanMark {
                    name: "retune.msg_group".into(),
                    cat: "retune",
                    start_ns: 0,
                    dur_ns: 1,
                    slot: None,
                    args: vec![
                        ("severity".into(), format!("{:.6}", adaptive_out.severity)),
                        ("old".into(), base.msg_group.to_string()),
                        ("new".into(), tuned.msg_group.to_string()),
                    ],
                });
            }
            let split_cap = tuned.msg_group.max(1);

            // (2) Demote aggregators off memory-shocked nodes for
            // rounds that have not started yet; in-flight rounds stay
            // with the shocked aggregator and are re-rounded by the
            // structural path below.
            for &(node, drop_frac, at) in &fspec.mem_shocks() {
                if drop_frac <= policy.dead_band() {
                    continue;
                }
                let at_ns = at.saturating_since(SimTime::ZERO).as_nanos();
                for (gi, g) in xplan.groups.iter_mut().enumerate() {
                    let shocked: Vec<Rank> = g
                        .aggregators
                        .iter()
                        .map(|a| a.rank)
                        .filter(|&r| map.node_of(r) == NodeId(node))
                        .collect();
                    for agg in shocked {
                        let affected =
                            future_rounds(g, plan.rw, agg, &pass1.windows, plan.sync, gi, at_ns);
                        if affected.is_empty() {
                            continue;
                        }
                        let Some((repl, repl_buffer)) =
                            select_contended_replacement(g, map, mem, NodeId(node), &signals)
                        else {
                            continue;
                        };
                        if repl == agg {
                            continue;
                        }
                        if !g.aggregators.iter().any(|a| a.rank == repl) {
                            let (fd, data_bytes) = g
                                .aggregators
                                .iter()
                                .find(|a| a.rank == agg)
                                .map(|a| (a.fd, a.data_bytes))
                                .unwrap_or((Extent::EMPTY, 0));
                            g.aggregators.push(AggregatorAssignment {
                                rank: repl,
                                fd,
                                buffer: repl_buffer,
                                data_bytes,
                            });
                        }
                        adaptive_out.demotions += 1;
                        let gkey = group_key(plan.sync, gi);
                        let first = *affected.first().expect("non-empty");
                        if !gates.iter().any(|gt| gt.group == gkey && gt.round == first) {
                            gates.push(FaultGate {
                                group: gkey,
                                round: first,
                                from: at,
                                release: at + FAILOVER_LATENCY,
                                label: format!("replan.g{gi}.r{first}"),
                                adaptive: true,
                            });
                        }
                        replans.push(ReplanMark {
                            name: format!("demote.g{gi}.r{first}"),
                            cat: "demote",
                            start_ns: at_ns,
                            dur_ns: FAILOVER_LATENCY.as_nanos().max(1),
                            slot: None,
                            args: vec![
                                ("node".into(), node.to_string()),
                                ("drop_frac".into(), format!("{drop_frac:.6}")),
                                ("from".into(), format!("r{}", agg.0)),
                                ("to".into(), format!("r{}", repl.0)),
                            ],
                        });
                        let limit = repl_buffer.min(split_cap).max(1);
                        for r in affected {
                            retarget_round(&mut g.rounds[r], plan.rw, agg, repl);
                            for appended in split_oversized(g, r, repl, limit, plan.rw) {
                                adaptive_out.resplits += 1;
                                replans.push(ReplanMark {
                                    name: format!("resplit.g{gi}.r{appended}"),
                                    cat: "resplit",
                                    start_ns: 0,
                                    dur_ns: 1,
                                    slot: Some((gkey, appended)),
                                    args: vec![("limit".into(), limit.to_string())],
                                });
                            }
                        }
                    }
                }
            }

            // (3) Defer rounds past degraded OST windows when the probe
            // says waiting beats crawling (timing-only: no plan bytes
            // change).
            for d in plan_deferrals(
                fspec,
                policy,
                spec.io_servers,
                &clean.windows,
                &pass1.windows,
                0,
                1.0,
            ) {
                if gates
                    .iter()
                    .any(|gt| gt.group == d.group && gt.round == d.round)
                {
                    continue;
                }
                let gname = d.group.map_or_else(|| "all".into(), |g| g.to_string());
                gates.push(FaultGate {
                    group: d.group,
                    round: d.round,
                    from: SimTime::from_nanos(d.from_ns),
                    release: SimTime::from_nanos(d.release_ns),
                    label: format!("defer.g{gname}.r{}", d.round),
                    adaptive: true,
                });
                adaptive_out.deferrals += 1;
                replans.push(ReplanMark {
                    name: format!("defer.g{gname}.r{}", d.round),
                    cat: "defer",
                    start_ns: d.from_ns,
                    dur_ns: d.release_ns.saturating_sub(d.from_ns).max(1),
                    slot: None,
                    args: vec![("stretch".into(), format!("{:.6}", d.stretch))],
                });
            }
        }
    }

    if structural {
        let pass1 = pass1.as_ref().expect("probe ran");

        for &(node, drop_frac, at) in &fspec.mem_shocks() {
            if plan.strategy == Strategy::TwoPhase {
                // The baseline has no runtime re-rounding path; shocks
                // only matter to it through the OST/transient channel.
                continue;
            }
            let at_ns = at.saturating_since(SimTime::ZERO).as_nanos();
            for (gi, g) in xplan.groups.iter_mut().enumerate() {
                let shocked: Vec<(Rank, u64)> = g
                    .aggregators
                    .iter()
                    .filter(|a| map.node_of(a.rank) == NodeId(node))
                    .map(|a| {
                        let eff = ((a.buffer as f64) * (1.0 - drop_frac)) as u64;
                        (a.rank, eff.max(1))
                    })
                    .collect();
                for (agg, effective) in shocked {
                    let affected =
                        affected_rounds(g, plan.rw, agg, &pass1.windows, plan.sync, gi, at_ns);
                    let gkey = group_key(plan.sync, gi);
                    for r in affected {
                        for appended in split_oversized(g, r, agg, effective, plan.rw) {
                            degraded.push((gkey, appended));
                        }
                    }
                }
            }
        }
    }

    // Pass 2 (or the only pass): the transformed plan under the full
    // injection, observed as the caller asked.
    let injection = FaultInjection {
        spec: Some(fspec),
        gates,
        degraded,
        replans,
    };
    let run: SimRun = simulate_inner(&xplan, map, spec, pipeline, exchange, obs, Some(&injection));
    let retries: u64 = run
        .retry_marks
        .iter()
        .map(|m| u64::from(m.attempts.saturating_sub(1)))
        .sum();
    let retry_exhausted = run.retry_marks.iter().filter(|m| m.exhausted).count() as u64;
    let degraded_rounds = injection.degraded.len();

    if let Some(reg) = obs.registry {
        let strat = [("strategy", plan.strategy.label())];
        reg.describe(
            "faults.events",
            "count",
            "Fault events in the injected plan",
        );
        reg.describe(
            "faults.failovers",
            "count",
            "Aggregator failovers performed",
        );
        reg.describe(
            "faults.degraded_rounds",
            "count",
            "Extra rounds created by graceful degradation",
        );
        reg.describe(
            "faults.completed",
            "bool",
            "1 when the collective delivered every byte under injection",
        );
        reg.inc("faults.events", &strat, fspec.events.len() as u64);
        reg.inc("faults.failovers", &strat, failovers as u64);
        reg.inc("faults.degraded_rounds", &strat, degraded_rounds as u64);
        reg.set_gauge(
            "faults.completed",
            &strat,
            if completed { 1.0 } else { 0.0 },
        );
        // adaptive.* appears only when the controller ran, so an Off
        // run's metrics document is byte-identical to the static path.
        if adaptive {
            let lab = [
                ("strategy", plan.strategy.label()),
                ("policy", policy.label()),
            ];
            reg.describe(
                "adaptive.severity",
                "fraction",
                "Sampled degradation severity the controller saw",
            );
            reg.describe(
                "adaptive.deferrals",
                "count",
                "Rounds deferred past a degraded OST window",
            );
            reg.describe(
                "adaptive.demotions",
                "count",
                "Aggregators demoted off shocked nodes",
            );
            reg.describe(
                "adaptive.resplits",
                "count",
                "Extra rounds created by adaptive re-splitting",
            );
            reg.describe(
                "adaptive.retunes",
                "count",
                "Msg_group re-tunes applied by the controller",
            );
            reg.set_gauge("adaptive.severity", &lab, adaptive_out.severity);
            reg.inc("adaptive.deferrals", &lab, adaptive_out.deferrals as u64);
            reg.inc("adaptive.demotions", &lab, adaptive_out.demotions as u64);
            reg.inc("adaptive.resplits", &lab, adaptive_out.resplits as u64);
            reg.inc(
                "adaptive.retunes",
                &lab,
                u64::from(adaptive_out.retuned.is_some()),
            );
        }
    }

    FaultOutcome {
        report: run.report,
        trace: run.trace,
        completed,
        failovers,
        degraded_rounds,
        retries,
        retry_exhausted,
        executed_plan: xplan,
        adaptive: adaptive_out,
    }
}

/// The trace/gate group key for group `gi` under `sync`: the global
/// chain zips all groups, so its slots are keyed `None`.
fn group_key(sync: SyncMode, gi: usize) -> Option<usize> {
    match sync {
        SyncMode::Global => None,
        SyncMode::PerGroup => Some(gi),
    }
}

/// Rounds of `g` that involve aggregator `agg` and were still in flight
/// (or not yet started) at `at_ns`, per the pass-1 windows. Rounds with
/// no recorded window (e.g. created by an earlier transform) count as
/// affected.
fn affected_rounds(
    g: &GroupPlan,
    rw: Rw,
    agg: Rank,
    windows: &[RoundWindow],
    sync: SyncMode,
    gi: usize,
    at_ns: u64,
) -> Vec<usize> {
    let gkey = group_key(sync, gi);
    (0..g.rounds.len())
        .filter(|&r| {
            let round = &g.rounds[r];
            let involves = round.ios.iter().any(|io| io.agg == agg)
                || round.messages.iter().any(|m| match rw {
                    Rw::Write => m.dst == agg,
                    Rw::Read => m.src == agg,
                });
            if !involves {
                return false;
            }
            let end = windows
                .iter()
                .filter(|w| w.round == r && (w.group == gkey || w.group.is_none()))
                .map(|w| w.end_ns)
                .max()
                .unwrap_or(u64::MAX);
            end > at_ns
        })
        .collect()
}

/// Rounds of `g` that involve aggregator `agg` and had not *started*
/// yet at `at_ns`, per the pass-1 windows — the adaptive demotion path
/// only re-targets rounds that can still change aggregator cleanly.
/// Rounds with no recorded window (created by an earlier transform,
/// executed at the end of the chain) count as future.
fn future_rounds(
    g: &GroupPlan,
    rw: Rw,
    agg: Rank,
    windows: &[RoundWindow],
    sync: SyncMode,
    gi: usize,
    at_ns: u64,
) -> Vec<usize> {
    let gkey = group_key(sync, gi);
    (0..g.rounds.len())
        .filter(|&r| {
            let round = &g.rounds[r];
            let involves = round.ios.iter().any(|io| io.agg == agg)
                || round.messages.iter().any(|m| match rw {
                    Rw::Write => m.dst == agg,
                    Rw::Read => m.src == agg,
                });
            if !involves {
                return false;
            }
            let start = windows
                .iter()
                .filter(|w| w.round == r && (w.group == gkey || w.group.is_none()))
                .map(|w| w.start_ns)
                .min()
                .unwrap_or(u64::MAX);
            start > at_ns
        })
        .collect()
}

/// Memory-aware replacement selection, mirroring the planner's placement
/// scoring: prefer a non-aggregator member rank off the crashed node
/// with the largest memory budget (lowest rank breaks ties); fall back
/// to an existing aggregator of the group off the node (reusing its
/// buffer); as a last resort *borrow* any off-node rank of the job —
/// node-aligned groups can be confined to the crashed node, and a
/// borrowed aggregator on a healthy node is what keeps the collective
/// alive. `None` only when every rank of the job lives on the crashed
/// node.
fn select_replacement(
    g: &GroupPlan,
    map: &ProcessMap,
    mem: &ProcMemory,
    down: NodeId,
) -> Option<(Rank, u64)> {
    let fresh = g
        .ranks
        .iter()
        .copied()
        .filter(|&r| map.node_of(r) != down)
        .filter(|&r| !g.aggregators.iter().any(|a| a.rank == r))
        .max_by_key(|&r| (mem.budget(r), std::cmp::Reverse(r.0)));
    if let Some(r) = fresh {
        return Some((r, mem.budget(r).max(1)));
    }
    if let Some(a) = g
        .aggregators
        .iter()
        .filter(|a| map.node_of(a.rank) != down)
        .max_by_key(|a| (a.buffer, std::cmp::Reverse(a.rank.0)))
    {
        return Some((a.rank, a.buffer));
    }
    (0..map.nranks())
        .map(Rank)
        .filter(|&r| map.node_of(r) != down)
        .max_by_key(|&r| (mem.budget(r), std::cmp::Reverse(r.0)))
        .map(|r| (r, mem.budget(r).max(1)))
}

/// Re-point every aggregator-side endpoint of `round` from `from` to
/// `to`: I/O ops, and the aggregator end of each message (dst on writes,
/// src on reads).
fn retarget_round(round: &mut Round, rw: Rw, from: Rank, to: Rank) {
    for io in &mut round.ios {
        if io.agg == from {
            io.agg = to;
        }
    }
    for m in &mut round.messages {
        match rw {
            Rw::Write if m.dst == from => m.dst = to,
            Rw::Read if m.src == from => m.src = to,
            _ => {}
        }
    }
}

/// Graceful degradation: split every I/O op of round `r` owned by `agg`
/// whose window exceeds `limit` into `limit`-sized chunks. The first
/// chunk replaces the op in place; the rest become new rounds appended
/// to the group, and the matching message extents move with them (split
/// at the same exact boundaries, preserving conservation). Returns the
/// indices of the appended rounds.
fn split_oversized(g: &mut GroupPlan, r: usize, agg: Rank, limit: u64, rw: Rw) -> Vec<usize> {
    let mut appended = Vec::new();
    let nios = g.rounds[r].ios.len();
    for i in 0..nios {
        if g.rounds[r].ios[i].agg != agg || g.rounds[r].ios[i].window.len <= limit {
            continue;
        }
        let io = g.rounds[r].ios[i].clone();
        let mut chunks = Vec::new();
        let mut off = io.window.offset;
        while off < io.window.end() {
            let len = limit.min(io.window.end() - off);
            chunks.push(Extent::new(off, len));
            off += len;
        }
        // Chunk 0 shrinks the op in place.
        g.rounds[r].ios[i] = IoOp {
            agg,
            window: chunks[0],
            extents: clip_extents(&io.extents, &chunks[0]),
        };
        // Later chunks each get their own appended round; the matching
        // message pieces move with them.
        for chunk in &chunks[1..] {
            let mut moved = Vec::new();
            for m in &mut g.rounds[r].messages {
                let agg_end = match rw {
                    Rw::Write => m.dst,
                    Rw::Read => m.src,
                };
                if agg_end != agg {
                    continue;
                }
                let (stay, go): (Vec<Extent>, Vec<Extent>) = {
                    let mut stay = Vec::new();
                    let mut go = Vec::new();
                    for e in &m.extents {
                        match e.intersect(chunk) {
                            Some(inside) => {
                                go.push(inside);
                                if e.offset < inside.offset {
                                    stay.push(Extent::from_bounds(e.offset, inside.offset));
                                }
                                if e.end() > inside.end() {
                                    stay.push(Extent::from_bounds(inside.end(), e.end()));
                                }
                            }
                            None => stay.push(*e),
                        }
                    }
                    (stay, go)
                };
                if !go.is_empty() {
                    m.extents = stay;
                    let mut piece = m.clone();
                    piece.extents = go;
                    moved.push(piece);
                }
            }
            g.rounds[r].messages.retain(|m| !m.extents.is_empty());
            g.rounds.push(Round {
                messages: moved,
                ios: vec![IoOp {
                    agg,
                    window: *chunk,
                    extents: clip_extents(&io.extents, chunk),
                }],
            });
            appended.push(g.rounds.len() - 1);
        }
    }
    appended
}

/// The pieces of `extents` inside `window`, clipped at its boundaries.
fn clip_extents(extents: &[Extent], window: &Extent) -> Vec<Extent> {
    extents.iter().filter_map(|e| e.intersect(window)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CollectiveConfig;
    use crate::exec_fn;
    use crate::request::CollectiveRequest;
    use crate::{mcio, twophase};
    use mcio_cluster::Placement;
    use mcio_pfs::SparseFile;

    const MIB: u64 = 1 << 20;

    fn serial_req(rw: Rw, nranks: usize, chunk: u64) -> CollectiveRequest {
        CollectiveRequest::new(
            rw,
            (0..nranks as u64)
                .map(|r| vec![Extent::new(r * chunk, chunk)])
                .collect(),
        )
    }

    fn setup(
        nranks: usize,
        ppn: usize,
        chunk: u64,
    ) -> (
        CollectiveRequest,
        ProcessMap,
        ProcMemory,
        CollectiveConfig,
        ClusterSpec,
    ) {
        let req = serial_req(Rw::Write, nranks, chunk);
        let map = ProcessMap::new(nranks, ppn, Placement::Block);
        let mem = ProcMemory::uniform(nranks, chunk);
        let cfg = CollectiveConfig::with_buffer(chunk);
        let spec = ClusterSpec::small(nranks / ppn, 2);
        (req, map, mem, cfg, spec)
    }

    fn written(plan: &CollectivePlan, len: u64) -> Vec<u8> {
        let mut file = SparseFile::new();
        exec_fn::execute_write(plan, &mut file).expect("plan executes");
        file.read_vec(0, len as usize)
    }

    #[test]
    fn fault_free_spec_matches_plain_simulation() {
        let (req, map, mem, cfg, spec) = setup(8, 2, 2 * MIB);
        let plan = mcio::plan(&req, &map, &mem, &cfg);
        let base = crate::exec_sim::simulate(&plan, &map, &spec);
        let out = simulate_faulted(
            &plan,
            &map,
            &spec,
            &mem,
            Pipeline::Serial,
            Exchange::Direct,
            &FaultSpec::none(),
            Observe::default(),
        );
        assert!(out.completed);
        assert_eq!(out.report.elapsed, base.elapsed);
        assert_eq!(out.failovers, 0);
        assert_eq!(out.degraded_rounds, 0);
    }

    #[test]
    fn agg_crash_fails_over_and_preserves_bytes() {
        let (req, map, mem, cfg, spec) = setup(8, 2, 2 * MIB);
        let plan = mcio::plan(&req, &map, &mem, &cfg);
        let fault = FaultSpec::parse("seed 7\nagg_crash(0, 1ms)").unwrap();
        let out = simulate_faulted(
            &plan,
            &map,
            &spec,
            &mem,
            Pipeline::Serial,
            Exchange::Direct,
            &fault,
            Observe::default(),
        );
        assert!(out.completed, "MC-CIO must survive an aggregator crash");
        assert!(out.failovers > 0, "crash at t=1ms must trigger a failover");
        let total = 8 * 2 * MIB;
        assert_eq!(
            written(&out.executed_plan, total),
            written(&plan, total),
            "failover must not change the bytes written"
        );
        assert!(
            out.report.elapsed >= crate::exec_sim::simulate(&plan, &map, &spec).elapsed,
            "failover cannot make the run faster"
        );
    }

    #[test]
    fn two_phase_does_not_survive_agg_crash() {
        let (req, map, mem, cfg, spec) = setup(8, 2, 2 * MIB);
        let plan = twophase::plan(&req, &map, &mem, &cfg);
        let fault = FaultSpec::parse("seed 7\nagg_crash(0, 1ms)").unwrap();
        let out = simulate_faulted(
            &plan,
            &map,
            &spec,
            &mem,
            Pipeline::Serial,
            Exchange::Direct,
            &fault,
            Observe::default(),
        );
        assert!(!out.completed, "baseline has no failover path");
        assert_eq!(out.failovers, 0);
    }

    #[test]
    fn crash_after_completion_is_harmless() {
        let (req, map, mem, cfg, spec) = setup(8, 2, 2 * MIB);
        let plan = mcio::plan(&req, &map, &mem, &cfg);
        let fault = FaultSpec::parse("seed 7\nagg_crash(0, 1000s)").unwrap();
        let out = simulate_faulted(
            &plan,
            &map,
            &spec,
            &mem,
            Pipeline::Serial,
            Exchange::Direct,
            &fault,
            Observe::default(),
        );
        assert!(out.completed);
        assert_eq!(out.failovers, 0);
        assert_eq!(
            out.report.elapsed,
            crate::exec_sim::simulate(&plan, &map, &spec).elapsed
        );
    }

    #[test]
    fn mem_shock_degrades_rounds_and_preserves_bytes() {
        let (req, map, mem, cfg, spec) = setup(8, 2, 2 * MIB);
        let plan = mcio::plan(&req, &map, &mem, &cfg);
        let fault = FaultSpec::parse("seed 7\nmem_shock(0, 0.75, 0ns)").unwrap();
        let out = simulate_faulted(
            &plan,
            &map,
            &spec,
            &mem,
            Pipeline::Serial,
            Exchange::Direct,
            &fault,
            Observe::default(),
        );
        assert!(out.completed);
        let total = 8 * 2 * MIB;
        assert_eq!(
            written(&out.executed_plan, total),
            written(&plan, total),
            "degradation must not change the bytes written"
        );
        if out.degraded_rounds > 0 {
            assert!(
                out.executed_plan.max_rounds() > plan.max_rounds(),
                "degradation re-rounds by appending rounds"
            );
        }
    }

    #[test]
    fn transformed_plan_still_checks() {
        let (req, map, mem, cfg, spec) = setup(8, 2, 2 * MIB);
        let plan = mcio::plan(&req, &map, &mem, &cfg);
        plan.check(&req).expect("input plan is sound");
        let fault = FaultSpec::parse("seed 3\nagg_crash(0, 1ms)\nmem_shock(1, 0.5, 2ms)").unwrap();
        let out = simulate_faulted(
            &plan,
            &map,
            &spec,
            &mem,
            Pipeline::Serial,
            Exchange::Direct,
            &fault,
            Observe::default(),
        );
        assert!(out.completed);
        out.executed_plan
            .check(&req)
            .expect("failover + degradation preserve plan invariants");
    }

    #[test]
    fn faulted_run_is_deterministic() {
        let (req, map, mem, cfg, spec) = setup(8, 2, 2 * MIB);
        let plan = mcio::plan(&req, &map, &mem, &cfg);
        let text =
            "seed 11\nost_slow(0, 4.0, 0ns..5ms)\nreq_transient_fail(0.3, 99)\nagg_crash(0, 1ms)";
        let run = || {
            let fault = FaultSpec::parse(text).unwrap();
            simulate_faulted(
                &plan,
                &map,
                &spec,
                &mem,
                Pipeline::Serial,
                Exchange::Direct,
                &fault,
                Observe {
                    trace: true,
                    ..Observe::default()
                },
            )
        };
        let (a, b) = (run(), run());
        assert_eq!(a.report.elapsed, b.report.elapsed);
        assert_eq!(a.trace, b.trace, "traces must be byte-identical");
        assert_eq!(a.retries, b.retries);
    }

    #[test]
    fn retries_surface_in_outcome() {
        let (req, map, mem, cfg, spec) = setup(8, 2, 2 * MIB);
        let plan = mcio::plan(&req, &map, &mem, &cfg);
        let fault = FaultSpec::parse("seed 5\nreq_transient_fail(0.9, 1)").unwrap();
        let out = simulate_faulted(
            &plan,
            &map,
            &spec,
            &mem,
            Pipeline::Serial,
            Exchange::Direct,
            &fault,
            Observe::default(),
        );
        assert!(out.completed);
        assert!(out.retries > 0, "p=0.9 must produce retries");
    }
}
