//! Collective I/O configuration: the paper's tunables.

const MIB: u64 = 1024 * 1024;

/// How the memory-conscious planner chooses an aggregator host for a
/// file domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PlacementPolicy {
    /// §3.3: the candidate host with maximum available memory, subject
    /// to `Mem_min` (triggering remerges when nobody qualifies).
    #[default]
    MemoryAware,
    /// Ablation: the first candidate host in node order, blind to
    /// memory (no `Mem_min` check, no remerging) — isolates the value
    /// of memory awareness from the group/partition structure.
    FirstCandidate,
}

/// Which collective strategy to plan with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// ROMIO-style two-phase collective I/O: one aggregator per node,
    /// even file-domain split, globally synchronized rounds.
    TwoPhase,
    /// The paper's memory-conscious collective I/O: disjoint aggregation
    /// groups, partition-tree file domains, memory-aware aggregator
    /// placement, per-group rounds.
    MemoryConscious,
}

impl Strategy {
    /// Short label used in reports ("two-phase" / "memory-conscious").
    pub fn label(self) -> &'static str {
        match self {
            Strategy::TwoPhase => "two-phase",
            Strategy::MemoryConscious => "memory-conscious",
        }
    }
}

/// All tunables of both strategies. The fields named in the paper:
/// `N_ah` ([`nah`](CollectiveConfig::nah)), `Msg_ind`
/// ([`msg_ind`](CollectiveConfig::msg_ind)), `Msg_group`
/// ([`msg_group`](CollectiveConfig::msg_group)) and `Mem_min`
/// ([`mem_min`](CollectiveConfig::mem_min)).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CollectiveConfig {
    /// Nominal aggregation buffer per aggregator, bytes (ROMIO
    /// `cb_buffer_size`). The effective buffer of a given aggregator is
    /// `min(cb_buffer, its process's memory budget)`.
    pub cb_buffer: u64,
    /// `N_ah`: maximum aggregators hosted by one physical node
    /// (memory-conscious only).
    pub nah: usize,
    /// `Msg_ind`: the per-aggregator I/O message size that saturates one
    /// aggregator's path to the file system; the partition tree stops
    /// splitting once a file domain holds at most this much requested
    /// data.
    pub msg_ind: u64,
    /// `Msg_group`: target requested-data size of one aggregation group;
    /// group division closes a group at the first node boundary past this
    /// many bytes.
    pub msg_group: u64,
    /// `Mem_min`: minimum memory an aggregator host must offer; file
    /// domains whose candidate hosts all fall short are remerged into a
    /// neighbor.
    pub mem_min: u64,
    /// Align baseline file-domain boundaries down to stripe boundaries
    /// (ROMIO's `striping_unit` hint behaviour).
    pub align_fd_to_stripes: Option<u64>,
    /// Aggregator host selection policy (memory-conscious only).
    pub placement: PlacementPolicy,
}

impl CollectiveConfig {
    /// Paper-flavored defaults for a given nominal buffer size:
    /// `N_ah = 2`, `Msg_ind = 4 × cb_buffer` (clamped to ≥ 16 MiB),
    /// `Msg_group = 8 × Msg_ind`, `Mem_min = cb_buffer / 2`.
    pub fn with_buffer(cb_buffer: u64) -> Self {
        let msg_ind = (4 * cb_buffer).max(16 * MIB);
        CollectiveConfig {
            cb_buffer,
            nah: 2,
            msg_ind,
            msg_group: 8 * msg_ind,
            mem_min: cb_buffer / 2,
            align_fd_to_stripes: None,
            placement: PlacementPolicy::MemoryAware,
        }
    }

    /// Builder-style override of `N_ah`.
    pub fn nah(mut self, nah: usize) -> Self {
        self.nah = nah;
        self
    }

    /// Builder-style override of `Msg_ind`.
    pub fn msg_ind(mut self, msg_ind: u64) -> Self {
        self.msg_ind = msg_ind;
        self
    }

    /// Builder-style override of `Msg_group`.
    pub fn msg_group(mut self, msg_group: u64) -> Self {
        self.msg_group = msg_group;
        self
    }

    /// Builder-style override of `Mem_min`.
    pub fn mem_min(mut self, mem_min: u64) -> Self {
        self.mem_min = mem_min;
        self
    }

    /// Builder-style override of the placement policy.
    pub fn placement(mut self, placement: PlacementPolicy) -> Self {
        self.placement = placement;
        self
    }

    /// Builder-style stripe alignment for baseline file domains.
    pub fn align_to_stripes(mut self, stripe_unit: u64) -> Self {
        self.align_fd_to_stripes = Some(stripe_unit);
        self
    }

    /// Validate invariants; returns a description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        if self.cb_buffer == 0 {
            return Err("cb_buffer must be positive".into());
        }
        if self.nah == 0 {
            return Err("nah must be at least 1".into());
        }
        if self.msg_ind == 0 {
            return Err("msg_ind must be positive".into());
        }
        if self.msg_group == 0 {
            return Err("msg_group must be positive".into());
        }
        if let Some(unit) = self.align_fd_to_stripes {
            if unit == 0 {
                return Err("stripe alignment unit must be positive".into());
            }
        }
        Ok(())
    }
}

impl Default for CollectiveConfig {
    fn default() -> Self {
        Self::with_buffer(16 * MIB)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid() {
        assert_eq!(CollectiveConfig::default().validate(), Ok(()));
        assert_eq!(CollectiveConfig::with_buffer(2 * MIB).validate(), Ok(()));
    }

    #[test]
    fn with_buffer_scales_msg_ind() {
        let c = CollectiveConfig::with_buffer(32 * MIB);
        assert_eq!(c.msg_ind, 128 * MIB);
        assert_eq!(c.msg_group, 1024 * MIB);
        assert_eq!(c.mem_min, 16 * MIB);
        // Small buffers clamp msg_ind up.
        let c = CollectiveConfig::with_buffer(MIB);
        assert_eq!(c.msg_ind, 16 * MIB);
    }

    #[test]
    fn builders_override() {
        let c = CollectiveConfig::default()
            .nah(4)
            .msg_ind(MIB)
            .msg_group(8 * MIB)
            .mem_min(0)
            .align_to_stripes(1 << 20);
        assert_eq!(c.nah, 4);
        assert_eq!(c.msg_ind, MIB);
        assert_eq!(c.align_fd_to_stripes, Some(1 << 20));
        assert_eq!(c.validate(), Ok(()));
    }

    #[test]
    fn validation_rejects_degenerate() {
        let broken = [
            CollectiveConfig {
                cb_buffer: 0,
                ..CollectiveConfig::default()
            },
            CollectiveConfig {
                nah: 0,
                ..CollectiveConfig::default()
            },
            CollectiveConfig {
                msg_group: 0,
                ..CollectiveConfig::default()
            },
            CollectiveConfig::default().align_to_stripes(0),
        ];
        for c in broken {
            assert!(c.validate().is_err(), "{c:?} should be invalid");
        }
    }

    #[test]
    fn strategy_labels() {
        assert_eq!(Strategy::TwoPhase.label(), "two-phase");
        assert_eq!(Strategy::MemoryConscious.label(), "memory-conscious");
    }
}
