//! The message-passing executor: runs a plan over `mcio-simpi` with one
//! OS thread per rank and real tagged sends/receives.
//!
//! The closest thing in this reproduction to "running the collective on
//! MPI": every rank walks the plan, sends the messages it is the source
//! of (payloads cut from the oracle for writes, from the shared file for
//! reads), receives the ones addressed to it in plan order, and
//! aggregators access a shared [`SparseFile`] behind a lock. Results must
//! agree byte-for-byte with the single-threaded reference executor — a
//! strong check that the plan is a faithful distributed protocol (no rank
//! needs information it would not have).

use crate::exec_fn::oracle_data;
use crate::plan::{CollectivePlan, SyncMode};
use mcio_cluster::Rank;
use mcio_pfs::{Extent, Rw, SparseFile};
use mcio_simpi::runtime::run;
use parking_lot::Mutex;
use std::sync::Arc;

/// Tag for plan data messages: `(group << 24) | round`, well under the
/// runtime's internal tag space.
fn tag(group: usize, round: usize) -> u64 {
    ((group as u64) << 24) | round as u64
}

/// Execute a **write** plan over simpi threads; the file is written in
/// place.
///
/// # Panics
/// Panics if the plan is not a write plan or a rank misbehaves (the
/// runtime propagates rank panics).
pub fn execute_write_mpi(plan: &CollectivePlan, file: &mut SparseFile) {
    assert_eq!(plan.rw, Rw::Write, "write executor needs a write plan");
    let nranks = plan_nranks(plan);
    if nranks == 0 {
        return;
    }
    let shared = Arc::new(Mutex::new(std::mem::take(file)));
    let plan = Arc::new(plan.clone());
    {
        let shared = Arc::clone(&shared);
        run(nranks, move |comm| {
            let me = Rank(comm.rank());
            for (gi, g) in plan.groups.iter().enumerate() {
                for (ri, round) in g.rounds.iter().enumerate() {
                    let t = tag(gi, ri);
                    // Send my contributions (in plan order).
                    for m in round.messages.iter().filter(|m| m.src == me) {
                        let mut payload = Vec::with_capacity(m.bytes() as usize);
                        for e in &m.extents {
                            payload.extend_from_slice(&oracle_data(e));
                        }
                        comm.send(m.dst.0, t, payload);
                    }
                    // Serve my aggregator windows.
                    for io in round.ios.iter().filter(|io| io.agg == me) {
                        let w = io.window;
                        let mut buf = vec![0u8; w.len as usize];
                        for m in round.messages.iter().filter(|m| m.dst == me) {
                            let payload = comm.recv(m.src.0, t);
                            let mut at = 0usize;
                            for e in &m.extents {
                                let dst = (e.offset - w.offset) as usize;
                                buf[dst..dst + e.len as usize]
                                    .copy_from_slice(&payload[at..at + e.len as usize]);
                                at += e.len as usize;
                            }
                        }
                        let mut file = shared.lock();
                        for e in &io.extents {
                            let at = (e.offset - w.offset) as usize;
                            file.write_at(e.offset, &buf[at..at + e.len as usize]);
                        }
                    }
                    // Global sync mirrors ROMIO's per-round alltoallv.
                    if plan.sync == SyncMode::Global {
                        comm.barrier();
                    }
                }
            }
        });
    }
    *file = Arc::try_unwrap(shared)
        .expect("all ranks joined")
        .into_inner();
}

/// Execute a **read** plan over simpi threads; returns each rank's
/// received `(extent, data)` pieces, like the reference executor.
pub fn execute_read_mpi(plan: &CollectivePlan, file: &SparseFile) -> Vec<Vec<(Extent, Vec<u8>)>> {
    assert_eq!(plan.rw, Rw::Read, "read executor needs a read plan");
    let nranks = plan_nranks(plan);
    if nranks == 0 {
        return Vec::new();
    }
    let plan = Arc::new(plan.clone());
    let file = Arc::new(file.clone());
    run(nranks, move |comm| {
        let me = Rank(comm.rank());
        let mut mine: Vec<(Extent, Vec<u8>)> = Vec::new();
        for (gi, g) in plan.groups.iter().enumerate() {
            for (ri, round) in g.rounds.iter().enumerate() {
                let t = tag(gi, ri);
                // Serve my aggregator windows: read, then distribute.
                for io in round.ios.iter().filter(|io| io.agg == me) {
                    let w = io.window;
                    let mut buf = vec![0u8; w.len as usize];
                    for e in &io.extents {
                        let at = (e.offset - w.offset) as usize;
                        file.read_at(e.offset, &mut buf[at..at + e.len as usize]);
                    }
                    for m in round.messages.iter().filter(|m| m.src == me) {
                        let mut payload = Vec::with_capacity(m.bytes() as usize);
                        for e in &m.extents {
                            let at = (e.offset - w.offset) as usize;
                            payload.extend_from_slice(&buf[at..at + e.len as usize]);
                        }
                        comm.send(m.dst.0, t, payload);
                    }
                }
                // Collect the pieces addressed to me (in plan order).
                for m in round.messages.iter().filter(|m| m.dst == me) {
                    let payload = comm.recv(m.src.0, t);
                    let mut at = 0usize;
                    for e in &m.extents {
                        mine.push((*e, payload[at..at + e.len as usize].to_vec()));
                        at += e.len as usize;
                    }
                }
                if plan.sync == SyncMode::Global {
                    comm.barrier();
                }
            }
        }
        mine
    })
}

fn plan_nranks(plan: &CollectivePlan) -> usize {
    plan.groups
        .iter()
        .flat_map(|g| g.ranks.iter())
        .map(|r| r.0 + 1)
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CollectiveConfig;
    use crate::exec_fn::{execute_write, verify_read, verify_write};
    use crate::memory::ProcMemory;
    use crate::request::CollectiveRequest;
    use crate::{mcio, twophase};
    use mcio_cluster::{Placement, ProcessMap};

    fn serial_req(rw: Rw, nranks: usize, chunk: u64) -> CollectiveRequest {
        CollectiveRequest::new(
            rw,
            (0..nranks as u64)
                .map(|r| vec![Extent::new(r * chunk, chunk)])
                .collect(),
        )
    }

    fn interleaved_req(rw: Rw, nranks: u64, blocks: u64, bs: u64) -> CollectiveRequest {
        CollectiveRequest::new(
            rw,
            (0..nranks)
                .map(|r| {
                    (0..blocks)
                        .map(|b| Extent::new((b * nranks + r) * bs, bs))
                        .collect()
                })
                .collect(),
        )
    }

    #[test]
    fn mpi_write_matches_reference_twophase() {
        let req = serial_req(Rw::Write, 6, 130);
        let map = ProcessMap::new(6, 3, Placement::Block);
        let mem = ProcMemory::uniform(6, 64);
        let cfg = CollectiveConfig::with_buffer(64);
        let plan = twophase::plan(&req, &map, &mem, &cfg);

        let mut ref_file = SparseFile::new();
        execute_write(&plan, &mut ref_file).unwrap();
        let mut mpi_file = SparseFile::new();
        execute_write_mpi(&plan, &mut mpi_file);
        verify_write(&req, &mpi_file).unwrap();
        for e in req.coverage() {
            assert_eq!(
                ref_file.read_vec(e.offset, e.len as usize),
                mpi_file.read_vec(e.offset, e.len as usize)
            );
        }
    }

    #[test]
    fn mpi_write_read_roundtrip_mcio_interleaved() {
        let wreq = interleaved_req(Rw::Write, 4, 6, 17);
        let rreq = interleaved_req(Rw::Read, 4, 6, 17);
        let map = ProcessMap::new(4, 2, Placement::Block);
        let mem = ProcMemory::normal(4, 60, 0.5, 5);
        let cfg = CollectiveConfig::with_buffer(60)
            .msg_ind(100)
            .msg_group(200)
            .mem_min(0);
        let wplan = mcio::plan(&wreq, &map, &mem, &cfg);
        let rplan = mcio::plan(&rreq, &map, &mem, &cfg);

        let mut file = SparseFile::new();
        execute_write_mpi(&wplan, &mut file);
        verify_write(&wreq, &file).unwrap();

        let received = execute_read_mpi(&rplan, &file);
        verify_read(&rreq, &file, &received).unwrap();
    }

    #[test]
    fn mpi_multi_round_global_sync() {
        let req = serial_req(Rw::Write, 4, 256);
        let map = ProcessMap::new(4, 2, Placement::Block);
        let mem = ProcMemory::uniform(4, 32); // 8 rounds per aggregator
        let cfg = CollectiveConfig::with_buffer(32);
        let plan = twophase::plan(&req, &map, &mem, &cfg);
        assert!(plan.max_rounds() >= 8);
        let mut file = SparseFile::new();
        execute_write_mpi(&plan, &mut file);
        verify_write(&req, &file).unwrap();
    }

    #[test]
    fn empty_plan_is_noop() {
        let req = CollectiveRequest::new(Rw::Write, vec![vec![], vec![]]);
        let map = ProcessMap::new(2, 1, Placement::Block);
        let mem = ProcMemory::uniform(2, 64);
        let plan = twophase::plan(&req, &map, &mem, &CollectiveConfig::default());
        let mut file = SparseFile::new();
        execute_write_mpi(&plan, &mut file);
        assert!(file.is_empty());
    }
}
