//! Memoized planning: a thread-safe cache of [`CollectivePlan`]s keyed
//! by a canonical hash of everything the planners consume.
//!
//! Parameter sweeps revisit the same planning inputs constantly — a grid
//! over pipeline modes or exchange shapes re-plans an identical
//! (request, topology, memory, config) tuple once per point, and the
//! partition tree + placement walk is the planning hot path. The cache
//! keys each plan by a 128-bit hash of the canonical byte encoding of
//! its inputs, so sweep points that share a plan skip re-partitioning
//! entirely and share one immutable `Arc<CollectivePlan>`.
//!
//! The key covers **all** planner inputs: the strategy, the request
//! direction and every rank's extent list, the process placement, every
//! rank's memory budget, and every configuration field. Two calls whose
//! inputs differ anywhere therefore never alias, and a cached plan is
//! structurally identical to the plan a fresh call would build (the
//! planners are pure functions of those inputs).
//!
//! Hit/miss totals are exposed as [`PlanCache::hits`]/[`PlanCache::misses`]
//! and can be exported as the `plan.cache_hit` / `plan.cache_miss`
//! counters via [`PlanCache::record_into`].

use crate::config::{CollectiveConfig, PlacementPolicy, Strategy};
use crate::memory::ProcMemory;
use crate::plan::CollectivePlan;
use crate::request::CollectiveRequest;
use crate::{mcio, twophase};
use mcio_cluster::ProcessMap;
use mcio_pfs::Rw;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Two independent FNV-1a 64-bit lanes over the same byte stream,
/// yielding a 128-bit canonical hash. Deterministic across runs,
/// machines, and thread interleavings (unlike `std`'s randomized
/// `DefaultHasher`), which keeps cache behaviour reproducible.
#[derive(Debug, Clone, Copy)]
struct CanonicalHasher {
    lo: u64,
    hi: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl CanonicalHasher {
    fn new() -> Self {
        CanonicalHasher {
            lo: FNV_OFFSET,
            // A distinct offset basis decorrelates the second lane.
            hi: FNV_OFFSET ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    fn byte(&mut self, b: u8) {
        self.lo = (self.lo ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        self.hi = (self.hi ^ u64::from(!b)).wrapping_mul(FNV_PRIME);
    }

    fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.byte(b);
        }
    }

    fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    fn finish(self) -> u128 {
        (u128::from(self.hi) << 64) | u128::from(self.lo)
    }
}

/// Compute the canonical 128-bit key of one planning call. Exposed so
/// tests (and diagnostics) can assert when two calls share a plan.
pub fn plan_key(
    strategy: Strategy,
    req: &CollectiveRequest,
    map: &ProcessMap,
    mem: &ProcMemory,
    cfg: &CollectiveConfig,
) -> u128 {
    let mut h = CanonicalHasher::new();
    h.byte(match strategy {
        Strategy::TwoPhase => 0,
        Strategy::MemoryConscious => 1,
    });
    h.byte(match req.rw {
        Rw::Write => 0,
        Rw::Read => 1,
    });
    h.usize(req.nranks());
    for rr in &req.ranks {
        h.usize(rr.extents.len());
        for e in &rr.extents {
            h.u64(e.offset);
            h.u64(e.len);
        }
    }
    h.usize(map.nnodes());
    for (_, node) in map.iter() {
        h.usize(node.0);
    }
    for &b in mem.budgets() {
        h.u64(b);
    }
    h.u64(cfg.cb_buffer);
    h.usize(cfg.nah);
    h.u64(cfg.msg_ind);
    h.u64(cfg.msg_group);
    h.u64(cfg.mem_min);
    match cfg.align_fd_to_stripes {
        None => h.byte(0),
        Some(unit) => {
            h.byte(1);
            h.u64(unit);
        }
    }
    h.byte(match cfg.placement {
        PlacementPolicy::MemoryAware => 0,
        PlacementPolicy::FirstCandidate => 1,
    });
    h.finish()
}

/// A thread-safe memoization table for [`twophase::plan`] and
/// [`mcio::plan`].
///
/// ```
/// use mcio_core::{plan_cache::PlanCache, CollectiveConfig, CollectiveRequest,
///                 ProcMemory, Strategy};
/// use mcio_cluster::ProcessMap;
/// use mcio_pfs::{Extent, Rw};
///
/// let req = CollectiveRequest::new(
///     Rw::Write,
///     (0..4u64).map(|r| vec![Extent::new(r * 1024, 1024)]).collect(),
/// );
/// let map = ProcessMap::block_ppn(4, 2);
/// let mem = ProcMemory::uniform(4, 512);
/// let cfg = CollectiveConfig::with_buffer(512);
///
/// let cache = PlanCache::new();
/// let a = cache.get_or_plan(Strategy::MemoryConscious, &req, &map, &mem, &cfg);
/// let b = cache.get_or_plan(Strategy::MemoryConscious, &req, &map, &mem, &cfg);
/// assert!(std::sync::Arc::ptr_eq(&a, &b));
/// assert_eq!((cache.hits(), cache.misses()), (1, 1));
/// ```
#[derive(Debug, Default)]
pub struct PlanCache {
    plans: Mutex<HashMap<u128, Arc<CollectivePlan>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    plan_ns: AtomicU64,
}

impl PlanCache {
    /// An empty cache.
    pub fn new() -> Self {
        PlanCache::default()
    }

    /// An empty cache behind an [`Arc`], ready to share across sweep
    /// workers.
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::new())
    }

    /// Return the memoized plan for these inputs, planning (and caching)
    /// it on first sight. Concurrent first sights of the same key may
    /// each plan once — both count as misses and the first insertion
    /// wins, so every caller still observes one canonical `Arc`.
    pub fn get_or_plan(
        &self,
        strategy: Strategy,
        req: &CollectiveRequest,
        map: &ProcessMap,
        mem: &ProcMemory,
        cfg: &CollectiveConfig,
    ) -> Arc<CollectivePlan> {
        let key = plan_key(strategy, req, map, mem, cfg);
        if let Some(hit) = self.lock().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(hit);
        }
        // Plan outside the lock: planning is the expensive part and
        // other keys should not serialize behind it.
        let started = std::time::Instant::now();
        let plan = Arc::new(match strategy {
            Strategy::TwoPhase => twophase::plan(req, map, mem, cfg),
            Strategy::MemoryConscious => mcio::plan(req, map, mem, cfg),
        });
        self.plan_ns
            .fetch_add(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
        self.misses.fetch_add(1, Ordering::Relaxed);
        Arc::clone(self.lock().entry(key).or_insert(plan))
    }

    /// Lookups served from the cache so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that had to plan.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Total wall-clock nanoseconds spent inside the planners on cache
    /// misses. Host-side timing: report it in `mcio.prof.v1`'s host
    /// section or on stdout, never in a byte-diffed document (the same
    /// rule as `plan.cache_hit`).
    pub fn plan_wall_ns(&self) -> u64 {
        self.plan_ns.load(Ordering::Relaxed)
    }

    /// Distinct plans currently cached.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// True when nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    /// Export the hit/miss totals as the `plan.cache_hit` /
    /// `plan.cache_miss` counters.
    pub fn record_into(&self, reg: &mcio_obs::Registry) {
        reg.describe("plan.cache_hit", "lookups", "Plan-cache lookups served");
        reg.describe(
            "plan.cache_miss",
            "lookups",
            "Plan-cache lookups that planned",
        );
        reg.inc("plan.cache_hit", &[], self.hits());
        reg.inc("plan.cache_miss", &[], self.misses());
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HashMap<u128, Arc<CollectivePlan>>> {
        self.plans.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcio_pfs::Extent;

    fn setup(chunk: u64) -> (CollectiveRequest, ProcessMap, ProcMemory, CollectiveConfig) {
        let req = CollectiveRequest::new(
            Rw::Write,
            (0..8u64)
                .map(|r| vec![Extent::new(r * chunk, chunk)])
                .collect(),
        );
        let map = ProcessMap::block_ppn(8, 2);
        let mem = ProcMemory::normal(8, chunk, 0.35, 42);
        let cfg = CollectiveConfig::with_buffer(chunk)
            .msg_ind(2 * chunk)
            .msg_group(4 * chunk)
            .mem_min(0);
        (req, map, mem, cfg)
    }

    #[test]
    fn cached_plan_is_structurally_identical_to_fresh() {
        let (req, map, mem, cfg) = setup(1024);
        let cache = PlanCache::new();
        for strategy in [Strategy::TwoPhase, Strategy::MemoryConscious] {
            let first = cache.get_or_plan(strategy, &req, &map, &mem, &cfg);
            let cached = cache.get_or_plan(strategy, &req, &map, &mem, &cfg);
            let fresh = match strategy {
                Strategy::TwoPhase => twophase::plan(&req, &map, &mem, &cfg),
                Strategy::MemoryConscious => mcio::plan(&req, &map, &mem, &cfg),
            };
            assert!(Arc::ptr_eq(&first, &cached));
            assert_eq!(*cached, fresh, "{strategy:?}");
        }
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.hits(), 2);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn any_input_change_changes_the_key() {
        let (req, map, mem, cfg) = setup(1024);
        let base = plan_key(Strategy::MemoryConscious, &req, &map, &mem, &cfg);

        let other_strategy = plan_key(Strategy::TwoPhase, &req, &map, &mem, &cfg);
        assert_ne!(base, other_strategy);

        let mut req2 = req.clone();
        req2.ranks[3].extents[0].len += 1;
        assert_ne!(
            base,
            plan_key(Strategy::MemoryConscious, &req2, &map, &mem, &cfg)
        );

        let map2 = ProcessMap::block_ppn(8, 4);
        assert_ne!(
            base,
            plan_key(Strategy::MemoryConscious, &req, &map2, &mem, &cfg)
        );

        let mem2 = ProcMemory::normal(8, 1024, 0.35, 43);
        assert_ne!(
            base,
            plan_key(Strategy::MemoryConscious, &req, &map, &mem2, &cfg)
        );

        for cfg2 in [
            cfg.clone().nah(3),
            cfg.clone().msg_ind(4096),
            cfg.clone().msg_group(16384),
            cfg.clone().mem_min(7),
            cfg.clone().align_to_stripes(64),
            cfg.clone().placement(PlacementPolicy::FirstCandidate),
        ] {
            assert_ne!(
                base,
                plan_key(Strategy::MemoryConscious, &req, &map, &mem, &cfg2),
                "{cfg2:?}"
            );
        }
    }

    #[test]
    fn key_is_stable_across_calls() {
        let (req, map, mem, cfg) = setup(2048);
        let a = plan_key(Strategy::MemoryConscious, &req, &map, &mem, &cfg);
        let b = plan_key(Strategy::MemoryConscious, &req, &map, &mem, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn counters_export_to_registry() {
        let (req, map, mem, cfg) = setup(1024);
        let cache = PlanCache::new();
        cache.get_or_plan(Strategy::TwoPhase, &req, &map, &mem, &cfg);
        cache.get_or_plan(Strategy::TwoPhase, &req, &map, &mem, &cfg);
        cache.get_or_plan(Strategy::TwoPhase, &req, &map, &mem, &cfg);
        let reg = mcio_obs::Registry::new();
        cache.record_into(&reg);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("plan.cache_hit", &[]), Some(2));
        assert_eq!(snap.counter("plan.cache_miss", &[]), Some(1));
    }

    #[test]
    fn concurrent_lookups_share_one_plan() {
        let (req, map, mem, cfg) = setup(1024);
        let cache = PlanCache::shared();
        let plans: Vec<Arc<CollectivePlan>> = std::thread::scope(|s| {
            (0..8)
                .map(|_| {
                    let cache = Arc::clone(&cache);
                    let (req, map, mem, cfg) = (&req, &map, &mem, &cfg);
                    s.spawn(move || {
                        cache.get_or_plan(Strategy::MemoryConscious, req, map, mem, cfg)
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        assert_eq!(cache.len(), 1, "one canonical entry");
        for p in &plans[1..] {
            assert_eq!(**p, *plans[0]);
        }
        assert_eq!(cache.hits() + cache.misses(), 8);
        assert!(cache.misses() >= 1);
    }
}
