//! The binary partition tree of the I/O Workload Partition component
//! (§3.2) and its remerge operations (Figures 5a/5b).
//!
//! The file region requested by one aggregation group is recursively
//! bisected until each leaf — a prospective **file domain** — holds at
//! most `Msg_ind` requested bytes ("the termination criterion"). Leaves
//! tile the region exactly and in offset order.
//!
//! When the Workload Portion Remerging component finds that no candidate
//! host of a leaf has enough memory, the leaf *leaves the tree* and its
//! region is taken over by the neighboring leaf:
//!
//! * **Case 1 (Fig 5a)** — the sibling is also a leaf: the two merge; the
//!   former parent becomes the leaf.
//! * **Case 2 (Fig 5b)** — the sibling is internal: a DFS into the
//!   sibling's subtree (visiting the side adjacent to the departing leaf
//!   first) finds the neighbor leaf, which absorbs the region; the parent
//!   is spliced out of the tree.

use mcio_pfs::Extent;

/// Index of a node in the tree arena.
pub type NodeIdx = usize;

#[derive(Debug, Clone)]
struct PNode {
    region: Extent,
    parent: Option<NodeIdx>,
    /// `(left, right)` children; `None` for leaves.
    children: Option<(NodeIdx, NodeIdx)>,
    /// Requested bytes inside `region` at build time.
    data_bytes: u64,
    /// Spliced out by a remerge.
    removed: bool,
}

/// The binary partition tree of one aggregation group's file region.
#[derive(Debug, Clone)]
pub struct PartitionTree {
    nodes: Vec<PNode>,
    root: NodeIdx,
    /// The full region the tree covers (invariant under remerges, even
    /// when a root splice replaces the root node).
    span: Extent,
}

impl PartitionTree {
    /// Recursively bisect `region` until every leaf holds at most
    /// `msg_ind` requested bytes (per `bytes_in`) or is a single byte.
    ///
    /// ```
    /// use mcio_core::ptree::PartitionTree;
    /// use mcio_pfs::Extent;
    ///
    /// // A dense 4 KiB region with 1 KiB file domains.
    /// let dense = |e: &Extent| e.len;
    /// let mut tree = PartitionTree::build(Extent::new(0, 4096), 1024, &dense);
    /// assert_eq!(tree.leaf_count(), 4);
    /// // Remerge the first domain into its neighbor (Fig 5a/5b).
    /// let victim = tree.leaves()[0];
    /// let absorbed = tree.remerge(victim).unwrap();
    /// assert_eq!(tree.region(absorbed), Extent::new(0, 2048));
    /// tree.check_tiling().unwrap();
    /// ```
    ///
    /// `bytes_in` reports the requested data inside an extent — the
    /// group's coalesced region intersected with it.
    pub fn build(region: Extent, msg_ind: u64, bytes_in: &dyn Fn(&Extent) -> u64) -> Self {
        let msg_ind = msg_ind.max(1);
        let mut tree = PartitionTree {
            nodes: Vec::new(),
            root: 0,
            span: region,
        };
        let root_bytes = bytes_in(&region);
        tree.nodes.push(PNode {
            region,
            parent: None,
            children: None,
            data_bytes: root_bytes,
            removed: false,
        });
        tree.split_recursive(0, msg_ind, bytes_in);
        tree
    }

    fn split_recursive(&mut self, idx: NodeIdx, msg_ind: u64, bytes_in: &dyn Fn(&Extent) -> u64) {
        let region = self.nodes[idx].region;
        if self.nodes[idx].data_bytes <= msg_ind || region.len < 2 {
            return;
        }
        let mid = region.offset + region.len / 2;
        let (left_r, right_r) = region.split_at(mid);
        let left = self.push_child(idx, left_r, bytes_in(&left_r));
        let right = self.push_child(idx, right_r, bytes_in(&right_r));
        self.nodes[idx].children = Some((left, right));
        self.split_recursive(left, msg_ind, bytes_in);
        self.split_recursive(right, msg_ind, bytes_in);
    }

    fn push_child(&mut self, parent: NodeIdx, region: Extent, data_bytes: u64) -> NodeIdx {
        let idx = self.nodes.len();
        self.nodes.push(PNode {
            region,
            parent: Some(parent),
            children: None,
            data_bytes,
            removed: false,
        });
        idx
    }

    /// The region the whole tree covers (invariant under remerges).
    pub fn root_region(&self) -> Extent {
        self.span
    }

    /// True when `idx` is a live leaf.
    pub fn is_leaf(&self, idx: NodeIdx) -> bool {
        !self.nodes[idx].removed && self.nodes[idx].children.is_none()
    }

    /// The (possibly extended) region of a node.
    pub fn region(&self, idx: NodeIdx) -> Extent {
        self.nodes[idx].region
    }

    /// Requested bytes recorded at build time for a node (leaf regions
    /// extended by remerges keep their sum via
    /// [`PartitionTree::remerge`]).
    pub fn data_bytes(&self, idx: NodeIdx) -> u64 {
        self.nodes[idx].data_bytes
    }

    /// Live leaves in file-offset order: the current file domains.
    pub fn leaves(&self) -> Vec<NodeIdx> {
        let mut out = Vec::new();
        self.collect_leaves(self.root, &mut out);
        out
    }

    fn collect_leaves(&self, idx: NodeIdx, out: &mut Vec<NodeIdx>) {
        if self.nodes[idx].removed {
            return;
        }
        match self.nodes[idx].children {
            None => out.push(idx),
            Some((l, r)) => {
                self.collect_leaves(l, out);
                self.collect_leaves(r, out);
            }
        }
    }

    /// Number of live leaves.
    pub fn leaf_count(&self) -> usize {
        self.leaves().len()
    }

    /// Remove leaf `idx` from the tree; its region (and data byte count)
    /// is absorbed by the neighboring leaf, which is returned. Returns
    /// `None` when `idx` is the only leaf (nothing can absorb it).
    ///
    /// # Panics
    /// Panics if `idx` is not a live leaf.
    pub fn remerge(&mut self, idx: NodeIdx) -> Option<NodeIdx> {
        assert!(self.is_leaf(idx), "remerge target must be a live leaf");
        let parent = self.nodes[idx].parent?;
        let (left, right) = self.nodes[parent]
            .children
            .expect("parent of a leaf has children");
        let is_left = left == idx;
        let sibling = if is_left { right } else { left };

        let absorbed_region = self.nodes[idx].region;
        let absorbed_bytes = self.nodes[idx].data_bytes;

        if self.nodes[sibling].children.is_none() {
            // Case 1 (Fig 5a): sibling B is a leaf. B takes over A
            // directly — their former parent's position is assigned to B
            // (B is spliced up, keeping its identity so callers' per-leaf
            // state survives), and B's region covers both.
            self.nodes[sibling].region = absorbed_region.hull(&self.nodes[sibling].region);
            self.nodes[sibling].data_bytes += absorbed_bytes;
            let gp = self.nodes[parent].parent;
            self.nodes[sibling].parent = gp;
            match gp {
                Some(g) => {
                    let (gl, gr) = self.nodes[g].children.expect("grandparent is internal");
                    if gl == parent {
                        self.nodes[g].children = Some((sibling, gr));
                    } else {
                        self.nodes[g].children = Some((gl, sibling));
                    }
                }
                None => self.root = sibling,
            }
            self.nodes[idx].removed = true;
            self.nodes[parent].removed = true;
            Some(sibling)
        } else {
            // Case 2 (Fig 5b): DFS into the sibling subtree, visiting the
            // side adjacent to the departing leaf first.
            let neighbor = self.extreme_leaf(sibling, is_left);
            self.nodes[neighbor].region = self.nodes[neighbor].region.hull(&absorbed_region);
            self.nodes[neighbor].data_bytes += absorbed_bytes;
            // Splice the parent out: the sibling takes its place.
            let gp = self.nodes[parent].parent;
            self.nodes[sibling].parent = gp;
            match gp {
                Some(g) => {
                    let (gl, gr) = self.nodes[g].children.expect("grandparent is internal");
                    if gl == parent {
                        self.nodes[g].children = Some((sibling, gr));
                    } else {
                        self.nodes[g].children = Some((gl, sibling));
                    }
                }
                None => self.root = sibling,
            }
            self.nodes[idx].removed = true;
            self.nodes[parent].removed = true;
            Some(neighbor)
        }
    }

    /// Leftmost (`left = true`) or rightmost live leaf of a subtree.
    fn extreme_leaf(&self, idx: NodeIdx, left: bool) -> NodeIdx {
        match self.nodes[idx].children {
            None => idx,
            Some((l, r)) => self.extreme_leaf(if left { l } else { r }, left),
        }
    }

    /// Check the tiling invariant: live leaf regions are non-empty*,
    /// disjoint, in offset order, and cover the root region exactly.
    /// (*zero-length leaves can only arise from a zero-length root.)
    pub fn check_tiling(&self) -> Result<(), String> {
        let leaves = self.leaves();
        let root = self.root_region();
        if root.is_empty() {
            return Ok(());
        }
        let mut pos = root.offset;
        for &l in &leaves {
            let r = self.region(l);
            if r.offset != pos {
                return Err(format!(
                    "leaf {l} starts at {} but previous coverage ended at {pos}",
                    r.offset
                ));
            }
            pos = r.end();
        }
        if pos != root.end() {
            return Err(format!(
                "leaves end at {pos}, root region ends at {}",
                root.end()
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `bytes_in` treating the whole region as dense data.
    fn dense(e: &Extent) -> u64 {
        e.len
    }

    #[test]
    fn no_split_when_small() {
        let t = PartitionTree::build(Extent::new(0, 100), 100, &dense);
        assert_eq!(t.leaf_count(), 1);
        assert_eq!(t.region(t.leaves()[0]), Extent::new(0, 100));
        t.check_tiling().unwrap();
    }

    #[test]
    fn dense_region_splits_to_msg_ind() {
        let t = PartitionTree::build(Extent::new(0, 1000), 100, &dense);
        let leaves = t.leaves();
        // 1000/100 → 16 leaves of 62/63 bytes (power-of-two bisection).
        assert_eq!(leaves.len(), 16);
        for &l in &leaves {
            assert!(t.data_bytes(l) <= 100);
        }
        t.check_tiling().unwrap();
    }

    #[test]
    fn sparse_region_splits_less() {
        // Only the first 10% of the region holds data.
        let data = Extent::new(0, 100);
        let bytes_in = move |e: &Extent| e.intersect(&data).map_or(0, |x| x.len);
        let t = PartitionTree::build(Extent::new(0, 1000), 50, &bytes_in);
        // The dense half keeps splitting; the empty side stays coarse.
        let leaves = t.leaves();
        assert!(leaves.len() < 16, "got {}", leaves.len());
        for &l in &leaves {
            assert!(t.data_bytes(l) <= 50);
        }
        t.check_tiling().unwrap();
    }

    #[test]
    fn leaves_in_offset_order() {
        let t = PartitionTree::build(Extent::new(100, 64), 8, &dense);
        let regions: Vec<Extent> = t.leaves().iter().map(|&l| t.region(l)).collect();
        for w in regions.windows(2) {
            assert_eq!(w[0].end(), w[1].offset);
        }
    }

    #[test]
    fn remerge_case1_sibling_leaf() {
        // [0,100) → two leaves [0,50), [50,100). Remerge the left one.
        let t0 = PartitionTree::build(Extent::new(0, 100), 60, &dense);
        assert_eq!(t0.leaf_count(), 2);
        let mut t = t0.clone();
        let leaves = t.leaves();
        let absorbed = t.remerge(leaves[0]).unwrap();
        assert_eq!(t.leaf_count(), 1);
        assert_eq!(t.region(absorbed), Extent::new(0, 100));
        assert_eq!(t.data_bytes(absorbed), 100);
        t.check_tiling().unwrap();
        // Symmetric: remerge the right one.
        let mut t = t0;
        let leaves = t.leaves();
        let absorbed = t.remerge(leaves[1]).unwrap();
        assert_eq!(t.region(absorbed), Extent::new(0, 100));
        t.check_tiling().unwrap();
    }

    #[test]
    fn remerge_case2_dfs_neighbor() {
        // Build a 3-level tree: [0,100) → [0,50),[50,100);
        // [50,100) → [50,75),[75,100). Leaves: A=[0,50) B=[50,75) C=[75,100).
        let data = Extent::new(50, 50);
        // Make only the right half dense so it splits further.
        let bytes_in = move |e: &Extent| e.intersect(&data).map_or(0, |x| x.len);
        let t0 = PartitionTree::build(Extent::new(0, 100), 30, &bytes_in);
        let leaves = t0.leaves();
        assert_eq!(leaves.len(), 3);
        assert_eq!(t0.region(leaves[0]), Extent::new(0, 50));
        assert_eq!(t0.region(leaves[1]), Extent::new(50, 25));
        assert_eq!(t0.region(leaves[2]), Extent::new(75, 25));

        // Remerging A (left child whose sibling is internal) must extend
        // the *leftmost* leaf of the sibling subtree: B.
        let mut t = t0.clone();
        let absorbed = t.remerge(leaves[0]).unwrap();
        assert_eq!(t.region(absorbed), Extent::new(0, 75));
        assert_eq!(t.leaf_count(), 2);
        t.check_tiling().unwrap();
        // The root was spliced: further remerge still works.
        let remaining = t.leaves();
        let last = t.remerge(remaining[0]).unwrap();
        assert_eq!(t.region(last), Extent::new(0, 100));
        t.check_tiling().unwrap();
    }

    #[test]
    fn remerge_case2_rightmost_when_right_departs() {
        // Mirror image: left subtree splits, right leaf departs → the
        // *rightmost* leaf of the left subtree absorbs.
        let data = Extent::new(0, 50);
        let bytes_in = move |e: &Extent| e.intersect(&data).map_or(0, |x| x.len);
        let t0 = PartitionTree::build(Extent::new(0, 100), 30, &bytes_in);
        let leaves = t0.leaves();
        assert_eq!(leaves.len(), 3);
        let mut t = t0;
        let right_leaf = leaves[2];
        assert_eq!(t.region(right_leaf), Extent::new(50, 50));
        let absorbed = t.remerge(right_leaf).unwrap();
        // [25,50) extends to [25,100).
        assert_eq!(t.region(absorbed), Extent::new(25, 75));
        t.check_tiling().unwrap();
    }

    #[test]
    fn remerge_last_leaf_returns_none() {
        let mut t = PartitionTree::build(Extent::new(0, 10), 100, &dense);
        let leaves = t.leaves();
        assert_eq!(leaves.len(), 1);
        assert_eq!(t.remerge(leaves[0]), None);
    }

    #[test]
    fn repeated_remerges_down_to_one_leaf() {
        let mut t = PartitionTree::build(Extent::new(0, 1024), 64, &dense);
        let initial = t.leaf_count();
        assert_eq!(initial, 16);
        let mut count = initial;
        while count > 1 {
            let leaves = t.leaves();
            // Alternate removing from the front and the middle.
            let victim = leaves[count / 2];
            let absorbed = t.remerge(victim).expect("more than one leaf");
            assert!(t.is_leaf(absorbed));
            count -= 1;
            assert_eq!(t.leaf_count(), count);
            t.check_tiling().unwrap();
        }
        let last = t.leaves()[0];
        assert_eq!(t.region(last), Extent::new(0, 1024));
        assert_eq!(t.data_bytes(last), 1024);
    }

    #[test]
    #[should_panic(expected = "live leaf")]
    fn remerge_internal_panics() {
        let mut t = PartitionTree::build(Extent::new(0, 100), 10, &dense);
        // Root is internal after splitting.
        t.remerge(0);
    }

    #[test]
    fn data_bytes_conserved_through_remerges() {
        let t0 = PartitionTree::build(Extent::new(0, 512), 32, &dense);
        let total: u64 = t0.leaves().iter().map(|&l| t0.data_bytes(l)).sum();
        assert_eq!(total, 512);
        let mut t = t0;
        let v = t.leaves()[3];
        t.remerge(v).unwrap();
        let total: u64 = t.leaves().iter().map(|&l| t.data_bytes(l)).sum();
        assert_eq!(total, 512);
    }
}
