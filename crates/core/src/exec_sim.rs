//! The timing executor: replays a collective plan on the machine model.
//!
//! Lowers the plan onto [`mcio_des`] activities using the cluster fabric
//! (per-node memory buses + NICs) and the PFS model (per-OST FIFO
//! queues):
//!
//! * Each round's per-pair transfers become message activities (inter-
//!   node: membus → NIC → wire → NIC → membus; intra-node: memory bus
//!   only).
//! * For writes, each aggregator's I/O waits for the messages addressed
//!   to it, then issues one PFS request per coalesced extent; for reads,
//!   the I/O comes first and the distribution messages wait on it.
//! * Rounds chain: under [`SyncMode::Global`] round *r+1* of *everyone*
//!   waits for round *r* of *everyone* (ROMIO's global `alltoallv`);
//!   under [`SyncMode::PerGroup`] each group chains independently.
//!
//! The result is the collective's makespan, reported as aggregate
//! bandwidth the way the paper's figures are (total bytes / elapsed).

use crate::plan::{CollectivePlan, Round, SyncMode};
use mcio_cluster::spec::ClusterSpec;
use mcio_cluster::{Fabric, ProcessMap, Rank};
use mcio_des::{Activity, ActivityId, SharePolicy, SimDuration, SimTime, Simulation};
use mcio_faults::{FaultEvent, FaultSpec};
use mcio_obs::{Registry, TraceCollector};
use mcio_pfs::{Pfs, RetryMark, Rw};
use std::sync::Arc;

/// Phase durations of one round slot (one synchronized step of one
/// chain).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundPhase {
    /// Which round chain the slot belongs to (groups under per-group
    /// sync; a single chain under global sync).
    pub chain: usize,
    /// Round index within the chain.
    pub round: usize,
    /// Time attributed to the data shuffle.
    pub exchange: SimDuration,
    /// Time attributed to the file access.
    pub io: SimDuration,
}

/// Structured metrics of one simulated collective, always computed
/// alongside the [`TimingReport`] scalars.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunMetrics {
    /// `exchange_time / (exchange_time + io_time)`, in `[0, 1]`. Unlike
    /// the raw attribution sums (which grow with the number of
    /// independent chains) this is normalized, so it compares safely
    /// across plans with different group counts.
    pub exchange_fraction: f64,
    /// `io_time / (exchange_time + io_time)`, in `[0, 1]`.
    pub io_fraction: f64,
    /// Per round-slot phase durations, chain-major.
    pub rounds: Vec<RoundPhase>,
    /// Per-aggregator file-access time, summed over its rounds: the span
    /// from its first PFS request starting to its last completing,
    /// keyed by rank index.
    pub agg_io: Vec<(usize, SimDuration)>,
}

/// Timing results of one simulated collective.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingReport {
    /// Wall-clock (simulated) duration of the collective.
    pub elapsed: SimDuration,
    /// Critical-path time attributed to the data-shuffle phase.
    ///
    /// **Summation semantics:** this is an *attribution sum* over round
    /// chains. Under [`SyncMode::PerGroup`] every group contributes its
    /// own chain, and concurrent chains each add their full phase time,
    /// so `exchange_time + io_time` can exceed `elapsed` (they partition
    /// `elapsed` only for a single chain). For cross-plan comparison use
    /// the normalized [`RunMetrics::exchange_fraction`] instead.
    pub exchange_time: SimDuration,
    /// Critical-path time attributed to the file-access phase (same
    /// attribution-sum semantics as
    /// [`exchange_time`](TimingReport::exchange_time); see
    /// [`RunMetrics::io_fraction`] for the normalized form).
    pub io_time: SimDuration,
    /// Total requested bytes moved.
    pub bytes: u64,
    /// Aggregate bandwidth in MiB/s (the paper's y-axis).
    pub bandwidth_mibs: f64,
    /// Busiest memory bus: total busy time.
    pub membus_busy_max: SimDuration,
    /// Busiest NIC (either direction): total busy time.
    pub nic_busy_max: SimDuration,
    /// Busiest OST: total busy time.
    pub ost_busy_max: SimDuration,
    /// Sum of OST busy time (storage work actually performed).
    pub ost_busy_total: SimDuration,
    /// Number of DES activities (diagnostic).
    pub activities: usize,
    /// Deterministic engine-side counters of the run (events, heap and
    /// ready-set high-water marks, per-class queue depths) — the
    /// `deterministic` payload of the `mcio.prof.v1` sidecar. In a
    /// multi-tenant run this is machine-wide, like the busy maxima.
    pub engine: mcio_des::EngineProfile,
    /// Structured per-round / per-aggregator breakdown.
    pub metrics: RunMetrics,
}

/// Scheduling of consecutive rounds within a chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Pipeline {
    /// Round `r+1` starts only after round `r` finished completely (a
    /// single aggregation buffer; the model the paper's prototype uses).
    #[default]
    Serial,
    /// Double buffering: round `r+1`'s exchange overlaps round `r`'s
    /// file access (two aggregation buffers per aggregator — twice the
    /// memory, the classic ROMIO `cb` pipelining).
    DoubleBuffered,
}

/// Shape of the shuffle exchange (the paper's "coordinates I/O accesses
/// in intra-node and inter-node layer").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Exchange {
    /// Every rank messages the aggregator directly (flat alltoallv).
    #[default]
    Direct,
    /// Two-level: ranks sharing a node first combine their pieces at a
    /// node leader over the memory bus, and one message per (node,
    /// aggregator) pair crosses the network — fewer, larger NIC
    /// transfers at the cost of an extra on-node copy.
    TwoLevel,
}

/// Absolute window of one executed round slot, for fault analysis:
/// which rounds were still in flight when an event struck.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct RoundWindow {
    /// Plan group the slot served (`None` = all groups, global sync).
    pub group: Option<usize>,
    /// Round index within the chain.
    pub round: usize,
    /// Slot start (after its gates), nanoseconds.
    pub start_ns: u64,
    /// Last phase completion of the slot, nanoseconds.
    pub end_ns: u64,
}

/// A failover re-coordination gate: the given round slot may not start
/// before `release` (detection + re-selection after a crash at `from`).
#[derive(Debug, Clone)]
pub(crate) struct FaultGate {
    /// Plan group the gate applies to (`None` = the global chain).
    pub group: Option<usize>,
    /// Round index the gate holds back.
    pub round: usize,
    /// The crash instant (trace span start).
    pub from: SimTime,
    /// Earliest start of the gated round.
    pub release: SimTime,
    /// Trace label, e.g. `failover.g0.r2`.
    pub label: String,
    /// True for closed-loop controller gates (defer/demote): they ride
    /// the pid-5 replan lanes instead of the pid-3 failover lane.
    pub adaptive: bool,
}

/// One decision of the closed-loop controller, destined for the pid-5
/// "replan" trace lanes. `cat` selects the lane: `retune` (tid 0),
/// `defer` (tid 1), `demote` (tid 2), `resplit` (tid 3). When `slot`
/// is set the span snaps to that executed round window; otherwise
/// `start_ns`/`dur_ns` place it directly.
#[derive(Debug, Clone)]
pub(crate) struct ReplanMark {
    /// Span name, e.g. `defer.g0.r2`.
    pub name: String,
    /// Lane category: `retune` | `defer` | `demote` | `resplit`.
    pub cat: &'static str,
    /// Span start (ignored when `slot` resolves), nanoseconds.
    pub start_ns: u64,
    /// Span duration (ignored when `slot` resolves), nanoseconds.
    pub dur_ns: u64,
    /// Executed round slot to snap to, if any.
    pub slot: Option<(Option<usize>, usize)>,
    /// Chrome-trace args (decision inputs, stringified).
    pub args: Vec<(String, String)>,
}

/// Everything `simulate_inner` needs to inject a fault plan: the spec
/// (OST perturbations + transient process), the failover gates, and the
/// rounds created or re-shaped by graceful degradation (trace-marked).
#[derive(Debug, Clone, Default)]
pub(crate) struct FaultInjection<'f> {
    /// The fault plan (OST windows, transient failures, event markers).
    pub spec: Option<&'f FaultSpec>,
    /// Failover gates keyed by (group, round).
    pub gates: Vec<FaultGate>,
    /// (group, round) slots produced by degradation re-rounding.
    pub degraded: Vec<(Option<usize>, usize)>,
    /// Closed-loop controller decisions (pid-5 "replan" lanes).
    pub replans: Vec<ReplanMark>,
}

/// Internal result of one lowered-and-run simulation.
pub(crate) struct SimRun {
    /// The public timing report.
    pub report: TimingReport,
    /// Chrome-trace JSON when requested.
    pub trace: Option<String>,
    /// Absolute round-slot windows (fault analysis input).
    pub windows: Vec<RoundWindow>,
    /// Retry chains the PFS expanded (empty without armed faults).
    pub retry_marks: Vec<RetryMark>,
}

/// Simulate a plan on `spec`'s machine with `map`'s process placement
/// (serial rounds, direct exchange; see [`simulate_opts`]).
pub fn simulate(plan: &CollectivePlan, map: &ProcessMap, spec: &ClusterSpec) -> TimingReport {
    simulate_opts(plan, map, spec, Pipeline::Serial)
}

/// Simulate with a two-level (node-leader combining) exchange.
pub fn simulate_two_level(
    plan: &CollectivePlan,
    map: &ProcessMap,
    spec: &ClusterSpec,
) -> TimingReport {
    simulate_inner(
        plan,
        map,
        spec,
        Pipeline::Serial,
        Exchange::TwoLevel,
        Observe::default(),
        None,
    )
    .report
}

/// Simulate and return a Chrome-trace JSON timeline (open in Perfetto /
/// `chrome://tracing`), alongside the report. One unified file: every
/// resource's service intervals plus a `plan.rounds` process with the
/// per-chain exchange/I-O phase spans. Expensive on big plans — meant
/// for inspection at small scale.
pub fn trace_plan(
    plan: &CollectivePlan,
    map: &ProcessMap,
    spec: &ClusterSpec,
) -> (TimingReport, String) {
    let run = simulate_inner(
        plan,
        map,
        spec,
        Pipeline::Serial,
        Exchange::Direct,
        Observe {
            trace: true,
            ..Observe::default()
        },
        None,
    );
    (run.report, run.trace.expect("trace was requested"))
}

/// Simulate with an explicit round-pipelining mode.
pub fn simulate_opts(
    plan: &CollectivePlan,
    map: &ProcessMap,
    spec: &ClusterSpec,
    pipeline: Pipeline,
) -> TimingReport {
    simulate_inner(
        plan,
        map,
        spec,
        pipeline,
        Exchange::Direct,
        Observe::default(),
        None,
    )
    .report
}

/// What to capture while simulating, beyond the [`TimingReport`].
#[derive(Debug, Default, Clone, Copy)]
pub struct Observe<'a> {
    /// Record planner counters, per-resource utilization, wait-time
    /// histograms, and PFS request metrics into this registry.
    pub registry: Option<&'a Arc<Registry>>,
    /// Capture the unified Chrome-trace timeline (returned as JSON).
    pub trace: bool,
    /// Record host-side phase timings (`build-activity-graph`,
    /// `des-run`, `trace-emit`) into this profiler. Wall-clock data:
    /// never enters the timing report or any byte-diffed document.
    pub prof: Option<&'a mcio_prof::Prof>,
    /// Service discipline for every simulated resource (fabric links,
    /// memory buses, OSTs). The default, [`SharePolicy::Fifo`], keeps
    /// the classic store-and-forward engine; [`SharePolicy::FairShare`]
    /// switches to the amortized processor-sharing engine. On workloads
    /// where no resource is ever shared the two produce byte-identical
    /// reports (see `crates/core/tests/engine_equiv.rs`).
    pub engine: SharePolicy,
}

/// Simulate with metrics recording (and optionally tracing) enabled.
/// Returns the trace JSON when [`Observe::trace`] was set.
pub fn simulate_observed(
    plan: &CollectivePlan,
    map: &ProcessMap,
    spec: &ClusterSpec,
    pipeline: Pipeline,
    exchange: Exchange,
    obs: Observe<'_>,
) -> (TimingReport, Option<String>) {
    let run = simulate_inner(plan, map, spec, pipeline, exchange, obs, None);
    (run.report, run.trace)
}

#[allow(clippy::too_many_arguments)]
pub(crate) fn simulate_inner(
    plan: &CollectivePlan,
    map: &ProcessMap,
    spec: &ClusterSpec,
    pipeline: Pipeline,
    exchange: Exchange,
    obs: Observe<'_>,
    faults: Option<&FaultInjection<'_>>,
) -> SimRun {
    let build_scope = obs.prof.map(|p| p.scope("build-activity-graph"));
    let mut sim = Simulation::with_policy(obs.engine);
    if obs.trace {
        sim.enable_trace();
    }
    let fabric = Fabric::build(&mut sim, spec);
    let mut pfs = Pfs::build(&mut sim, spec);
    if let Some(reg) = obs.registry {
        pfs.set_registry(Arc::clone(reg));
    }
    if let Some(fspec) = faults.and_then(|f| f.spec) {
        pfs.apply_faults(&mut sim, fspec);
    }
    assert!(
        map.nnodes() <= fabric.nnodes(),
        "process map uses more nodes than the cluster has"
    );

    // Failover gates: a round slot hit by a crash may not start before
    // the re-coordination window closes. One release-gated activity per
    // (group, round) the fault transform flagged.
    let mut gate_acts: std::collections::HashMap<(Option<usize>, usize), ActivityId> =
        std::collections::HashMap::new();
    if let Some(f) = faults {
        for gate in &f.gates {
            let act = sim.add_activity(Activity::new(gate.label.clone()).release_at(gate.release));
            gate_acts.insert((gate.group, gate.round), act);
        }
    }

    let (round_meta, chain_groups) = lower_plan(
        &mut sim, &fabric, &pfs, plan, map, pipeline, exchange, &gate_acts, None, "",
    );

    let activities = sim.activity_count();
    drop(build_scope);
    let run_scope = obs.prof.map(|p| p.scope("des-run"));
    let report = sim.run().expect("collective plan DAG is acyclic");
    drop(run_scope);
    let retry_marks = pfs.take_retry_marks();

    let (membus_busy_max, nic_busy_max, ost_busy_max, ost_busy_total) =
        busy_maxima(&report, &fabric, &pfs);

    let Attribution {
        exchange_time,
        io_time,
        rounds: round_phases,
        windows,
        agg_io,
    } = attribute_phases(plan.rw, &report, &round_meta, &chain_groups);

    let bytes: u64 = plan.groups.iter().map(|g| g.io_bytes()).sum();
    let elapsed = report.makespan().saturating_since(SimTime::ZERO);
    let bandwidth_mibs = if elapsed.is_zero() {
        0.0
    } else {
        bytes as f64 / (1024.0 * 1024.0) / elapsed.as_secs_f64()
    };
    let (exchange_fraction, io_fraction) = phase_fractions(exchange_time, io_time);
    let metrics = RunMetrics {
        exchange_fraction,
        io_fraction,
        rounds: round_phases,
        agg_io,
    };

    if let Some(reg) = obs.registry {
        plan.record_into(reg);
        report.record_into(reg);
        pfs.record_imbalance();
        record_run(
            reg,
            plan.strategy.label(),
            None,
            elapsed,
            bytes,
            bandwidth_mibs,
            &metrics,
        );
    }

    // Unified trace: resource service lanes (pid 1) plus the logical
    // round-phase lanes (pid 2), one thread per chain.
    let trace_json = if obs.trace {
        let _emit_scope = obs.prof.map(|p| p.scope("trace-emit"));
        let tc = TraceCollector::new();
        report.trace_into(&tc, 1);
        tc.name_process(2, "plan.rounds");
        emit_round_spans(
            &tc,
            &report,
            plan.rw,
            &round_meta,
            &chain_groups,
            &metrics.rounds,
            0,
            "",
        );
        // Fault lanes (pid 3): injected events, failover gates,
        // degradation re-rounds, and per-OST retry/backoff chains. The
        // "inject" category is descriptive only; the resilience
        // categories (retry/backoff/failover/degraded) feed the fifth
        // critical-path bucket in `mcio-analyze`.
        // An all-empty injection (no events, no gates, no degradation,
        // no retries) is skipped entirely so a faulted run with an empty
        // plan produces a trace byte-identical to a fault-free run.
        if let Some(f) = faults.filter(|f| {
            f.spec.is_some_and(|s| !s.is_empty())
                || !f.gates.is_empty()
                || !f.degraded.is_empty()
                || !retry_marks.is_empty()
        }) {
            trace_faults(&tc, f, &report, &windows, &retry_marks, elapsed.as_nanos());
        }
        // Replan lanes (pid 5): closed-loop controller decisions.
        // Emitted only when the controller actually acted, so an
        // `AdaptivePolicy::Off` run stays byte-identical.
        if let Some(f) = faults.filter(|f| !f.replans.is_empty()) {
            trace_replan(&tc, &f.replans, &windows, elapsed.as_nanos());
        }
        Some(tc.chrome_trace_json())
    } else {
        None
    };

    SimRun {
        report: TimingReport {
            elapsed,
            exchange_time,
            io_time,
            bytes,
            bandwidth_mibs,
            membus_busy_max,
            nic_busy_max,
            ost_busy_max,
            ost_busy_total,
            activities,
            engine: report.engine_profile(),
            metrics,
        },
        trace: trace_json,
        windows,
        retry_marks,
    }
}

/// Per-slot metadata for phase attribution: the activities the slot's
/// first phase waited on, its messages and its I/O completions (also
/// grouped per aggregator).
pub(crate) struct SlotMeta {
    pub(crate) chain: usize,
    pub(crate) round: usize,
    pub(crate) first_deps: Vec<ActivityId>,
    pub(crate) msgs: Vec<ActivityId>,
    pub(crate) ios: Vec<ActivityId>,
    pub(crate) agg_ios: Vec<(Rank, Vec<ActivityId>)>,
}

/// Lower a whole plan into `sim`: build the round chains (global sync
/// zips every group into one chain; per-group sync gives each group its
/// own), wire the pipelining dependencies, and add the per-slot joins.
///
/// `prefix` namespaces every activity label this plan creates (the
/// multi-tenant runner passes `j{n}.` so traces and analysis can
/// attribute work to its job; the solo executors pass `""`, which keeps
/// their labels byte-identical to the historical ones). `start_gate`
/// delays every chain's first round — the job's arrival time. Returns
/// the slot metadata plus `chain_groups` (`chain_groups[ci]` is the
/// plan group chain `ci` serves; `None` = all groups, global sync).
#[allow(clippy::too_many_arguments)]
pub(crate) fn lower_plan(
    sim: &mut Simulation,
    fabric: &Fabric,
    pfs: &Pfs,
    plan: &CollectivePlan,
    map: &ProcessMap,
    pipeline: Pipeline,
    exchange: Exchange,
    gate_acts: &std::collections::HashMap<(Option<usize>, usize), ActivityId>,
    start_gate: Option<ActivityId>,
    prefix: &str,
) -> (Vec<SlotMeta>, Vec<Option<usize>>) {
    // Chains of round-slots: Global sync zips all groups into one chain;
    // PerGroup gives each group its own. `chain_groups[ci]` remembers
    // which plan group chain `ci` serves (`None` = all groups, under
    // global sync) so the trace can expose per-group span metadata.
    let mut chains: Vec<Vec<Vec<&Round>>> = Vec::new();
    let mut chain_groups: Vec<Option<usize>> = Vec::new();
    match plan.sync {
        SyncMode::Global => {
            let mut chain = Vec::new();
            for r in 0..plan.max_rounds() {
                chain.push(
                    plan.groups
                        .iter()
                        .filter_map(|g| g.rounds.get(r))
                        .collect::<Vec<_>>(),
                );
            }
            chains.push(chain);
            chain_groups.push(None);
        }
        SyncMode::PerGroup => {
            for (gi, g) in plan.groups.iter().enumerate() {
                if !g.rounds.is_empty() {
                    chains.push(g.rounds.iter().map(|r| vec![r]).collect());
                    chain_groups.push(Some(gi));
                }
            }
        }
    }

    let mut round_meta: Vec<SlotMeta> = Vec::new();
    for (ci, chain) in chains.iter().enumerate() {
        let mut ex_joins: Vec<ActivityId> = Vec::new();
        let mut io_joins: Vec<ActivityId> = Vec::new();
        for (r, slot) in chain.iter().enumerate() {
            // Dependencies per pipelining mode. The "first" phase is the
            // exchange for writes and the I/O for reads.
            let (mut first_deps, second_extra): (Vec<ActivityId>, Vec<ActivityId>) = if r == 0 {
                (start_gate.into_iter().collect(), Vec::new())
            } else {
                match pipeline {
                    Pipeline::Serial => (vec![ex_joins[r - 1], io_joins[r - 1]], Vec::new()),
                    Pipeline::DoubleBuffered => {
                        // The first phase of round r reuses the buffer the
                        // second phase of round r-2 released; the second
                        // phase serializes per buffer stream.
                        let (prev_first, prev_second) = match plan.rw {
                            Rw::Write => (&ex_joins, &io_joins),
                            Rw::Read => (&io_joins, &ex_joins),
                        };
                        let mut first = vec![prev_first[r - 1]];
                        if r >= 2 {
                            first.push(prev_second[r - 2]);
                        }
                        (first, vec![prev_second[r - 1]])
                    }
                }
            };
            if let Some(&gate) = gate_acts.get(&(chain_groups[ci], r)) {
                first_deps.push(gate);
            }
            let mut msgs_all = Vec::new();
            let mut ios_all = Vec::new();
            let mut agg_ios_all: Vec<(Rank, Vec<ActivityId>)> = Vec::new();
            for round in slot {
                let h = lower_round(
                    sim,
                    fabric,
                    pfs,
                    map,
                    plan.rw,
                    round,
                    &first_deps,
                    &second_extra,
                    exchange,
                    prefix,
                );
                msgs_all.extend(h.msgs);
                ios_all.extend(h.ios);
                agg_ios_all.extend(h.agg_ios);
            }
            let ex_join = sim.add_activity(Activity::new(format!("{prefix}c{ci}.r{r}.ex")));
            for &m in &msgs_all {
                sim.add_dep(m, ex_join);
            }
            let io_join = sim.add_activity(Activity::new(format!("{prefix}c{ci}.r{r}.io")));
            for &io in &ios_all {
                sim.add_dep(io, io_join);
            }
            // Empty phases still chain (join on the other phase so the
            // slot completes in order).
            if msgs_all.is_empty() {
                for &d in &first_deps {
                    sim.add_dep(d, ex_join);
                }
            }
            if ios_all.is_empty() {
                sim.add_dep(ex_join, io_join);
            }
            round_meta.push(SlotMeta {
                chain: ci,
                round: r,
                first_deps,
                msgs: msgs_all,
                ios: ios_all,
                agg_ios: agg_ios_all,
            });
            ex_joins.push(ex_join);
            io_joins.push(io_join);
        }
    }
    (round_meta, chain_groups)
}

/// Busy-time maxima over the machine's resources: the busiest memory
/// bus, the busiest NIC direction, the busiest OST, and the summed OST
/// busy time.
pub(crate) fn busy_maxima(
    report: &mcio_des::RunReport,
    fabric: &Fabric,
    pfs: &Pfs,
) -> (SimDuration, SimDuration, SimDuration, SimDuration) {
    let nnodes = fabric.nnodes();
    let mut membus_busy_max = SimDuration::ZERO;
    let mut nic_busy_max = SimDuration::ZERO;
    for n in 0..nnodes {
        let node = mcio_cluster::NodeId(n);
        membus_busy_max = membus_busy_max.max(report.resource_usage(fabric.membus(node)).busy_time);
        nic_busy_max = nic_busy_max
            .max(report.resource_usage(fabric.nic_tx(node)).busy_time)
            .max(report.resource_usage(fabric.nic_rx(node)).busy_time);
    }
    let mut ost_busy_max = SimDuration::ZERO;
    let mut ost_busy_total = SimDuration::ZERO;
    for o in 0..pfs.ost_count() {
        let busy = report
            .resource_usage(pfs.ost_resource(mcio_pfs::OstId(o)))
            .busy_time;
        ost_busy_max = ost_busy_max.max(busy);
        ost_busy_total += busy;
    }
    (membus_busy_max, nic_busy_max, ost_busy_max, ost_busy_total)
}

/// Phase attribution of one lowered plan after the simulation ran.
pub(crate) struct Attribution {
    /// Attribution-sum exchange time over the plan's chains.
    pub(crate) exchange_time: SimDuration,
    /// Attribution-sum file-access time over the plan's chains.
    pub(crate) io_time: SimDuration,
    /// Per round-slot phase durations, chain-major.
    pub(crate) rounds: Vec<RoundPhase>,
    /// Absolute executed window of every slot.
    pub(crate) windows: Vec<RoundWindow>,
    /// Per-aggregator file-access time (first request start → last
    /// done, summed over rounds), keyed by rank index.
    pub(crate) agg_io: Vec<(usize, SimDuration)>,
}

/// Attribute each round slot's executed window to its exchange and I/O
/// phases: messages span [start, last message done]; I/O spans the rest
/// of the round. Reads do I/O first, so the roles of the two interval
/// ends swap.
pub(crate) fn attribute_phases(
    rw: Rw,
    report: &mcio_des::RunReport,
    round_meta: &[SlotMeta],
    chain_groups: &[Option<usize>],
) -> Attribution {
    let mut exchange_time = SimDuration::ZERO;
    let mut io_time = SimDuration::ZERO;
    let mut round_phases: Vec<RoundPhase> = Vec::with_capacity(round_meta.len());
    let mut windows: Vec<RoundWindow> = Vec::with_capacity(round_meta.len());
    let mut agg_io_acc: std::collections::BTreeMap<usize, SimDuration> =
        std::collections::BTreeMap::new();
    for meta in round_meta {
        let t0 = meta
            .first_deps
            .iter()
            .map(|&d| report.finish_time(d))
            .max()
            .unwrap_or(SimTime::ZERO);
        let msgs_end = meta
            .msgs
            .iter()
            .map(|&a| report.finish_time(a))
            .max()
            .unwrap_or(t0);
        let ios_end = meta
            .ios
            .iter()
            .map(|&a| report.finish_time(a))
            .max()
            .unwrap_or(t0);
        windows.push(RoundWindow {
            group: chain_groups.get(meta.chain).copied().flatten(),
            round: meta.round,
            start_ns: t0.saturating_since(SimTime::ZERO).as_nanos(),
            end_ns: msgs_end
                .max(ios_end)
                .saturating_since(SimTime::ZERO)
                .as_nanos(),
        });
        let (exchange, io) = match rw {
            Rw::Write => (
                msgs_end.saturating_since(t0),
                ios_end.saturating_since(msgs_end),
            ),
            Rw::Read => (
                msgs_end.saturating_since(ios_end),
                ios_end.saturating_since(t0),
            ),
        };
        exchange_time += exchange;
        io_time += io;
        round_phases.push(RoundPhase {
            chain: meta.chain,
            round: meta.round,
            exchange,
            io,
        });
        // Per-aggregator file access: first request start → last done.
        for (agg, ios) in &meta.agg_ios {
            let start = ios.iter().map(|&a| report.start_time(a)).min();
            let end = ios.iter().map(|&a| report.finish_time(a)).max();
            if let (Some(s), Some(e)) = (start, end) {
                *agg_io_acc.entry(agg.0).or_insert(SimDuration::ZERO) += e.saturating_since(s);
            }
        }
    }
    Attribution {
        exchange_time,
        io_time,
        rounds: round_phases,
        windows,
        agg_io: agg_io_acc.into_iter().collect(),
    }
}

/// Normalize an attribution sum into `(exchange_fraction, io_fraction)`
/// (both zero when nothing was attributed).
pub(crate) fn phase_fractions(exchange_time: SimDuration, io_time: SimDuration) -> (f64, f64) {
    let attributed = exchange_time + io_time;
    if attributed.is_zero() {
        (0.0, 0.0)
    } else {
        let total = attributed.as_secs_f64();
        (
            exchange_time.as_secs_f64() / total,
            io_time.as_secs_f64() / total,
        )
    }
}

/// Record one run's scalar gauges and per-round observations into the
/// registry. `job` appends a `job` label to every sample so concurrent
/// tenants stay distinguishable; solo runs pass `None` and keep the
/// historical label set.
pub(crate) fn record_run(
    reg: &Registry,
    strategy: &str,
    job: Option<&str>,
    elapsed: SimDuration,
    bytes: u64,
    bandwidth_mibs: f64,
    metrics: &RunMetrics,
) {
    reg.describe(
        "run.elapsed_ns",
        "ns",
        "Simulated wall-clock of the collective",
    );
    reg.describe("run.bytes", "bytes", "Requested bytes moved");
    reg.describe("run.bandwidth_mibs", "MiB/s", "Aggregate bandwidth");
    reg.describe(
        "run.exchange_frac",
        "ratio",
        "Normalized share of attributed time spent shuffling",
    );
    reg.describe(
        "run.io_frac",
        "ratio",
        "Normalized share of attributed time spent in file access",
    );
    reg.describe(
        "run.round.exchange_ns",
        "ns",
        "Per-round exchange phase duration",
    );
    reg.describe(
        "run.round.io_ns",
        "ns",
        "Per-round file-access phase duration",
    );
    reg.describe(
        "run.agg.io_ns",
        "ns",
        "Per-aggregator file-access time summed over rounds",
    );
    let mut labels: Vec<(&str, &str)> = vec![("strategy", strategy)];
    if let Some(j) = job {
        labels.push(("job", j));
    }
    reg.set_gauge("run.elapsed_ns", &labels, elapsed.as_nanos() as f64);
    reg.inc("run.bytes", &labels, bytes);
    reg.set_gauge("run.bandwidth_mibs", &labels, bandwidth_mibs);
    reg.set_gauge("run.exchange_frac", &labels, metrics.exchange_fraction);
    reg.set_gauge("run.io_frac", &labels, metrics.io_fraction);
    for p in &metrics.rounds {
        reg.observe("run.round.exchange_ns", &labels, p.exchange.as_nanos());
        reg.observe("run.round.io_ns", &labels, p.io.as_nanos());
    }
    for (agg, dur) in &metrics.agg_io {
        let agg = agg.to_string();
        let mut alabels: Vec<(&str, &str)> = vec![("agg", agg.as_str())];
        if let Some(j) = job {
            alabels.push(("job", j));
        }
        reg.set_gauge("run.agg.io_ns", &alabels, dur.as_nanos() as f64);
    }
}

/// Emit the pid-2 `plan.rounds` spans of one lowered plan: one lane per
/// chain at `tid_base + chain`, named
/// `{lane_prefix}chain{c} (group g)`. The solo executors pass
/// `tid_base = 0, lane_prefix = ""`; the multi-tenant runner stacks the
/// jobs' chains into disjoint tid ranges and prefixes the lanes with
/// the job label so `mcio-analyze` can attribute them.
#[allow(clippy::too_many_arguments)]
pub(crate) fn emit_round_spans(
    tc: &TraceCollector,
    report: &mcio_des::RunReport,
    rw: Rw,
    round_meta: &[SlotMeta],
    chain_groups: &[Option<usize>],
    rounds: &[RoundPhase],
    tid_base: u64,
    lane_prefix: &str,
) {
    let mut named_chains = std::collections::BTreeSet::new();
    for (meta, phase) in round_meta.iter().zip(rounds) {
        // Per-group span metadata: which plan group this chain
        // serves ("all" when global sync zips every group into one
        // chain) and how many aggregators work the slot. Critical-
        // path reconstruction in `mcio-analyze` keys on these args.
        let group = match chain_groups.get(meta.chain).copied().flatten() {
            Some(gi) => gi.to_string(),
            None => "all".to_string(),
        };
        let naggs = meta.agg_ios.len().to_string();
        let round_s = meta.round.to_string();
        let args: &[(&str, &str)] = &[
            ("group", group.as_str()),
            ("round", round_s.as_str()),
            ("aggs", naggs.as_str()),
        ];
        let tid = tid_base + meta.chain as u64;
        if named_chains.insert(meta.chain) {
            tc.name_thread(
                2,
                tid,
                &format!("{lane_prefix}chain{} (group {group})", meta.chain),
            );
        }
        let t0 = meta
            .first_deps
            .iter()
            .map(|&d| report.finish_time(d))
            .max()
            .unwrap_or(SimTime::ZERO)
            .saturating_since(SimTime::ZERO)
            .as_nanos();
        let (ex_start, io_start) = match rw {
            Rw::Write => (t0, t0 + phase.exchange.as_nanos()),
            Rw::Read => (t0 + phase.io.as_nanos(), t0),
        };
        if !phase.exchange.is_zero() {
            tc.span_with_args(
                &format!("r{}.exchange", meta.round),
                "exchange",
                2,
                tid,
                ex_start,
                phase.exchange.as_nanos(),
                args,
            );
        }
        if !phase.io.is_zero() {
            tc.span_with_args(
                &format!("r{}.io", meta.round),
                "io",
                2,
                tid,
                io_start,
                phase.io.as_nanos(),
                args,
            );
        }
    }
}

/// Emit the pid-3 "faults" trace process: what was injected and how the
/// execution absorbed it.
///
/// * tid 0 `injected` — OST slow/stall windows and instantaneous
///   crash/shock markers, category `inject` (not attributed).
/// * tid 1 `failover` — one span per re-coordination gate, from the
///   crash instant to the gate release, category `failover`.
/// * tid 2 `degraded` — one span per re-round created by graceful
///   degradation, covering the slot's executed window, category
///   `degraded`.
/// * tid `3 + ost` — retry/backoff chains per OST: the failed service
///   attempts (`retry`) and the waits between them (`backoff`).
pub(crate) fn trace_faults(
    tc: &TraceCollector,
    f: &FaultInjection<'_>,
    report: &mcio_des::RunReport,
    windows: &[RoundWindow],
    retry_marks: &[RetryMark],
    elapsed_ns: u64,
) {
    tc.name_process(3, "faults");
    tc.name_thread(3, 0, "injected");
    tc.name_thread(3, 1, "failover");
    tc.name_thread(3, 2, "degraded");
    if let Some(spec) = f.spec {
        for ev in &spec.events {
            match *ev {
                FaultEvent::OstSlow {
                    ost, from, until, ..
                } => {
                    let start = from.saturating_since(SimTime::ZERO).as_nanos();
                    let end = until
                        .saturating_since(SimTime::ZERO)
                        .as_nanos()
                        .min(elapsed_ns);
                    if end > start {
                        tc.span(
                            &format!("ost{ost}.slow"),
                            "inject",
                            3,
                            0,
                            start,
                            end - start,
                        );
                    }
                }
                FaultEvent::OstStall { ost, from, until } => {
                    let start = from.saturating_since(SimTime::ZERO).as_nanos();
                    let end = until
                        .saturating_since(SimTime::ZERO)
                        .as_nanos()
                        .min(elapsed_ns);
                    if end > start {
                        tc.span(
                            &format!("ost{ost}.stall"),
                            "inject",
                            3,
                            0,
                            start,
                            end - start,
                        );
                    }
                }
                FaultEvent::ReqTransientFail { .. } => {}
                FaultEvent::MemShock { node, at, .. } => {
                    let at = at.saturating_since(SimTime::ZERO).as_nanos();
                    if at < elapsed_ns {
                        tc.span(&format!("node{node}.mem_shock"), "inject", 3, 0, at, 1);
                    }
                }
                FaultEvent::AggCrash { host, at } => {
                    let at = at.saturating_since(SimTime::ZERO).as_nanos();
                    if at < elapsed_ns {
                        tc.span(&format!("host{host}.agg_crash"), "inject", 3, 0, at, 1);
                    }
                }
            }
        }
    }
    for gate in f.gates.iter().filter(|g| !g.adaptive) {
        let start = gate.from.saturating_since(SimTime::ZERO).as_nanos();
        let end = gate
            .release
            .saturating_since(SimTime::ZERO)
            .as_nanos()
            .min(elapsed_ns);
        if end > start {
            tc.span(&gate.label, "failover", 3, 1, start, end - start);
        }
    }
    for &(group, round) in &f.degraded {
        if let Some(w) = windows
            .iter()
            .find(|w| w.group == group && w.round == round)
        {
            if w.end_ns > w.start_ns {
                tc.span(
                    &format!("r{round}.degraded"),
                    "degraded",
                    3,
                    2,
                    w.start_ns,
                    w.end_ns - w.start_ns,
                );
            }
        }
    }
    let mut named_osts = std::collections::BTreeSet::new();
    for mark in retry_marks {
        let tid = 3 + mark.ost as u64;
        if named_osts.insert(mark.ost) {
            tc.name_thread(3, tid, &format!("ost{}.retries", mark.ost));
        }
        // Service records of the retry chain, in submission order: the
        // first `attempts - 1` stages are the failed tries; the gaps
        // between consecutive stages are the backoff waits.
        let recs: Vec<_> = report
            .trace()
            .unwrap_or(&[])
            .iter()
            .filter(|rec| rec.activity == mark.activity)
            .cloned()
            .collect();
        for (i, rec) in recs.iter().enumerate() {
            let start = rec.start.saturating_since(SimTime::ZERO).as_nanos();
            let dur = rec.end.saturating_since(rec.start).as_nanos();
            if (i as u32) < mark.attempts.saturating_sub(1) && dur > 0 {
                tc.span(&format!("attempt{}", i + 1), "retry", 3, tid, start, dur);
            }
            if let Some(next) = recs.get(i + 1) {
                let gap_start = rec.end.saturating_since(SimTime::ZERO).as_nanos();
                let gap = next.start.saturating_since(rec.end).as_nanos();
                if gap > 0 {
                    tc.span("backoff", "backoff", 3, tid, gap_start, gap);
                }
            }
        }
    }
}

/// Emit the pid-5 "replan" lanes: one thread per controller actuator
/// (`retune` 0, `defer` 1, `demote` 2, `resplit` 3), one span per
/// decision. Slot-anchored marks snap to the executed round window so
/// the span shows when the re-planned round actually ran; marks whose
/// slot never executed are dropped (nothing to attribute).
pub(crate) fn trace_replan(
    tc: &TraceCollector,
    replans: &[ReplanMark],
    windows: &[RoundWindow],
    elapsed_ns: u64,
) {
    tc.name_process(5, "replan");
    let mut named = std::collections::BTreeSet::new();
    for mark in replans {
        let tid = match mark.cat {
            "retune" => 0,
            "defer" => 1,
            "demote" => 2,
            _ => 3,
        };
        if named.insert(tid) {
            tc.name_thread(
                5,
                tid,
                match tid {
                    0 => "retune",
                    1 => "defer",
                    2 => "demote",
                    _ => "resplit",
                },
            );
        }
        let (start, dur) = match mark.slot {
            Some((group, round)) => {
                let Some(w) = windows
                    .iter()
                    .find(|w| w.group == group && w.round == round)
                else {
                    continue;
                };
                (w.start_ns, w.end_ns.saturating_sub(w.start_ns))
            }
            None => (mark.start_ns, mark.dur_ns),
        };
        let start = start.min(elapsed_ns);
        let dur = dur.min(elapsed_ns - start).max(1);
        let args: Vec<(&str, &str)> = mark
            .args
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_str()))
            .collect();
        tc.span_with_args(&mark.name, mark.cat, 5, tid, start, dur, &args);
    }
}

/// One step of an exchange chain.
enum Leg {
    /// An on-node copy of `bytes` (leader-side combine or scatter).
    Combine {
        /// The node performing the local copy.
        node: mcio_cluster::NodeId,
        /// Combined payload size.
        bytes: u64,
    },
    /// A message to/from the aggregator (`src` is the non-aggregator
    /// endpoint's node).
    Wire {
        /// The non-aggregator endpoint's node.
        src: mcio_cluster::NodeId,
        /// Payload size.
        bytes: u64,
    },
}

/// Expand a write round's transfers into per-aggregator leg chains.
fn exchange_transfers(
    round: &Round,
    map: &ProcessMap,
    exchange: Exchange,
) -> std::collections::BTreeMap<mcio_cluster::Rank, Vec<Vec<Leg>>> {
    let mut out: std::collections::BTreeMap<mcio_cluster::Rank, Vec<Vec<Leg>>> =
        std::collections::BTreeMap::new();
    match exchange {
        Exchange::Direct => {
            for ((src, dst), bytes) in round.transfers() {
                out.entry(dst).or_default().push(vec![Leg::Wire {
                    src: map.node_of(src),
                    bytes,
                }]);
            }
        }
        Exchange::TwoLevel => {
            // Merge contributions per (source node, aggregator).
            let mut per_node: std::collections::BTreeMap<
                (mcio_cluster::NodeId, mcio_cluster::Rank),
                u64,
            > = std::collections::BTreeMap::new();
            for ((src, dst), bytes) in round.transfers() {
                *per_node.entry((map.node_of(src), dst)).or_insert(0) += bytes;
            }
            for ((node, dst), bytes) in per_node {
                let chain = if node == map.node_of(dst) {
                    // Already on the aggregator's node: plain local copy.
                    vec![Leg::Wire { src: node, bytes }]
                } else {
                    vec![Leg::Combine { node, bytes }, Leg::Wire { src: node, bytes }]
                };
                out.entry(dst).or_default().push(chain);
            }
        }
    }
    out
}

/// Expand a read round's distribution into per-aggregator leg chains
/// (`Wire.src` names the destination node; `Combine` is the on-node
/// scatter after the wire).
fn exchange_transfers_read(
    round: &Round,
    map: &ProcessMap,
    exchange: Exchange,
) -> std::collections::BTreeMap<mcio_cluster::Rank, Vec<Vec<Leg>>> {
    let mut out: std::collections::BTreeMap<mcio_cluster::Rank, Vec<Vec<Leg>>> =
        std::collections::BTreeMap::new();
    match exchange {
        Exchange::Direct => {
            for ((src, dst), bytes) in round.transfers() {
                out.entry(src).or_default().push(vec![Leg::Wire {
                    src: map.node_of(dst),
                    bytes,
                }]);
            }
        }
        Exchange::TwoLevel => {
            let mut per_node: std::collections::BTreeMap<
                (mcio_cluster::Rank, mcio_cluster::NodeId),
                u64,
            > = std::collections::BTreeMap::new();
            for ((src, dst), bytes) in round.transfers() {
                *per_node.entry((src, map.node_of(dst))).or_insert(0) += bytes;
            }
            for ((agg, node), bytes) in per_node {
                let chain = if node == map.node_of(agg) {
                    vec![Leg::Wire { src: node, bytes }]
                } else {
                    vec![Leg::Wire { src: node, bytes }, Leg::Combine { node, bytes }]
                };
                out.entry(agg).or_default().push(chain);
            }
        }
    }
    out
}

/// Handles of a lowered round: the message activities and the I/O
/// completion activities (the slot joins are built from these).
struct RoundHandles {
    /// The message activities (for joins and phase attribution).
    msgs: Vec<ActivityId>,
    /// The I/O completion activities.
    ios: Vec<ActivityId>,
    /// I/O completion activities grouped by the aggregator that issued
    /// them (for per-aggregator phase attribution).
    agg_ios: Vec<(Rank, Vec<ActivityId>)>,
}

/// Lower one round. `first_deps` gate the round's first phase (exchange
/// for writes, I/O for reads); `second_extra` are additional gates on
/// the second phase (used by pipelined scheduling); `prefix` namespaces
/// every label (job attribution under multi-tenancy, `""` solo).
#[allow(clippy::too_many_arguments)]
fn lower_round(
    sim: &mut Simulation,
    fabric: &Fabric,
    pfs: &Pfs,
    map: &ProcessMap,
    rw: Rw,
    round: &Round,
    first_deps: &[ActivityId],
    second_extra: &[ActivityId],
    exchange: Exchange,
    prefix: &str,
) -> RoundHandles {
    let mut msg_acts: Vec<ActivityId> = Vec::new();
    let mut io_acts: Vec<ActivityId> = Vec::new();
    let mut agg_io_map: std::collections::BTreeMap<Rank, Vec<ActivityId>> =
        std::collections::BTreeMap::new();
    match rw {
        Rw::Write => {
            // Exchange, then I/O.
            let mut msgs_to_agg: std::collections::BTreeMap<mcio_cluster::Rank, Vec<ActivityId>> =
                std::collections::BTreeMap::new();
            for (dst, chains) in exchange_transfers(round, map, exchange) {
                for chain in chains {
                    let mut prev: Option<ActivityId> = None;
                    for leg in chain {
                        let a = match leg {
                            Leg::Combine { node, bytes } => {
                                // On-node combine at the leader: one extra
                                // memory-bus copy of the combined payload.
                                sim.add_activity(fabric.message(
                                    format!("{prefix}combine.{node}->{dst}"),
                                    node,
                                    node,
                                    bytes,
                                ))
                            }
                            Leg::Wire { src, bytes } => sim.add_activity(fabric.message(
                                format!("{prefix}msg.{src}->{dst}"),
                                src,
                                map.node_of(dst),
                                bytes,
                            )),
                        };
                        match prev {
                            None => {
                                for &d in first_deps {
                                    sim.add_dep(d, a);
                                }
                            }
                            Some(p) => sim.add_dep(p, a),
                        }
                        prev = Some(a);
                        msgs_to_agg.entry(dst).or_default().push(a);
                        msg_acts.push(a);
                    }
                }
            }
            for io in &round.ios {
                let mut deps = msgs_to_agg
                    .get(&io.agg)
                    .cloned()
                    .unwrap_or_else(|| first_deps.to_vec());
                deps.extend_from_slice(second_extra);
                let node = map.node_of(io.agg);
                for e in &io.extents {
                    let done = pfs.submit(
                        sim,
                        fabric,
                        &format!("{prefix}io.{}", io.agg),
                        node,
                        Rw::Write,
                        *e,
                        &deps,
                    );
                    agg_io_map.entry(io.agg).or_default().push(done);
                    io_acts.push(done);
                }
            }
        }
        Rw::Read => {
            // I/O first, then distribution.
            let mut io_of_agg: std::collections::BTreeMap<mcio_cluster::Rank, Vec<ActivityId>> =
                std::collections::BTreeMap::new();
            for io in &round.ios {
                let deps: Vec<ActivityId> = first_deps.to_vec();
                let node = map.node_of(io.agg);
                for e in &io.extents {
                    let done = pfs.submit(
                        sim,
                        fabric,
                        &format!("{prefix}io.{}", io.agg),
                        node,
                        Rw::Read,
                        *e,
                        &deps,
                    );
                    io_of_agg.entry(io.agg).or_default().push(done);
                    agg_io_map.entry(io.agg).or_default().push(done);
                    io_acts.push(done);
                }
            }
            for (agg, chains) in exchange_transfers_read(round, map, exchange) {
                for chain in chains {
                    let mut prev: Option<ActivityId> = None;
                    for leg in chain {
                        let a = match leg {
                            Leg::Combine { node, bytes } => {
                                // On-node scatter from the leader's buffer.
                                sim.add_activity(fabric.message(
                                    format!("{prefix}scatter.{agg}->{node}"),
                                    node,
                                    node,
                                    bytes,
                                ))
                            }
                            Leg::Wire {
                                src: dst_node,
                                bytes,
                            } => sim.add_activity(fabric.message(
                                format!("{prefix}msg.{agg}->{dst_node}"),
                                map.node_of(agg),
                                dst_node,
                                bytes,
                            )),
                        };
                        match prev {
                            None => {
                                // The aggregator must have read its window
                                // first.
                                match io_of_agg.get(&agg) {
                                    Some(ios) => {
                                        for &io in ios {
                                            sim.add_dep(io, a);
                                        }
                                    }
                                    None => {
                                        for &d in first_deps {
                                            sim.add_dep(d, a);
                                        }
                                    }
                                }
                                for &d in second_extra {
                                    sim.add_dep(d, a);
                                }
                            }
                            Some(p) => sim.add_dep(p, a),
                        }
                        prev = Some(a);
                        msg_acts.push(a);
                    }
                }
            }
        }
    }
    RoundHandles {
        msgs: msg_acts,
        ios: io_acts,
        agg_ios: agg_io_map.into_iter().collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CollectiveConfig;
    use crate::memory::ProcMemory;
    use crate::request::CollectiveRequest;
    use crate::{mcio, twophase};
    use mcio_cluster::Placement;
    use mcio_pfs::Extent;

    const MIB: u64 = 1 << 20;

    fn serial_req(rw: Rw, nranks: usize, chunk: u64) -> CollectiveRequest {
        CollectiveRequest::new(
            rw,
            (0..nranks as u64)
                .map(|r| vec![Extent::new(r * chunk, chunk)])
                .collect(),
        )
    }

    fn small_spec(nodes: usize) -> ClusterSpec {
        ClusterSpec::small(nodes, 2)
    }

    #[test]
    fn write_collective_produces_sane_timing() {
        let req = serial_req(Rw::Write, 8, 4 * MIB);
        let map = ProcessMap::new(8, 4, Placement::Block);
        let mem = ProcMemory::uniform(8, 4 * MIB);
        let cfg = CollectiveConfig::with_buffer(4 * MIB);
        let plan = twophase::plan(&req, &map, &mem, &cfg);
        let rep = simulate(&plan, &map, &small_spec(4));
        assert_eq!(rep.bytes, 32 * MIB);
        assert!(!rep.elapsed.is_zero());
        assert!(rep.bandwidth_mibs > 0.0);
        // PFS-bound: the 4 OSTs at 100 MiB/s cap aggregate write BW.
        assert!(
            rep.bandwidth_mibs < 450.0,
            "bw {} exceeds PFS capability",
            rep.bandwidth_mibs
        );
    }

    #[test]
    fn read_faster_than_write_same_plan_shape() {
        let wreq = serial_req(Rw::Write, 4, 8 * MIB);
        let rreq = serial_req(Rw::Read, 4, 8 * MIB);
        let map = ProcessMap::new(4, 2, Placement::Block);
        let mem = ProcMemory::uniform(4, 8 * MIB);
        let cfg = CollectiveConfig::with_buffer(8 * MIB);
        let spec = small_spec(2);
        let w = simulate(&twophase::plan(&wreq, &map, &mem, &cfg), &map, &spec);
        let r = simulate(&twophase::plan(&rreq, &map, &mem, &cfg), &map, &spec);
        assert!(
            r.bandwidth_mibs > w.bandwidth_mibs,
            "read {} <= write {}",
            r.bandwidth_mibs,
            w.bandwidth_mibs
        );
    }

    #[test]
    fn smaller_buffers_are_slower() {
        let req = serial_req(Rw::Write, 8, 8 * MIB);
        let map = ProcessMap::new(8, 4, Placement::Block);
        let spec = small_spec(4);
        let mut last_bw = f64::INFINITY;
        for buf in [8 * MIB, MIB, MIB / 4] {
            let mem = ProcMemory::uniform(8, buf);
            let cfg = CollectiveConfig::with_buffer(buf);
            let plan = twophase::plan(&req, &map, &mem, &cfg);
            let rep = simulate(&plan, &map, &spec);
            assert!(
                rep.bandwidth_mibs < last_bw,
                "buffer {buf}: bw {} did not drop below {last_bw}",
                rep.bandwidth_mibs
            );
            last_bw = rep.bandwidth_mibs;
        }
    }

    #[test]
    fn memory_conscious_beats_baseline_with_starved_aggregator() {
        // One designated baseline aggregator is memory-starved; MC routes
        // around it.
        let req = serial_req(Rw::Write, 8, 8 * MIB);
        let map = ProcessMap::new(8, 4, Placement::Block);
        // Baseline aggregators are ranks 0,2,4,6; rank 0 is starved.
        let mut budgets = vec![8 * MIB; 8];
        budgets[0] = MIB / 4;
        let mem = ProcMemory::from_budgets(budgets);
        let cfg = CollectiveConfig::with_buffer(8 * MIB)
            .msg_ind(16 * MIB)
            .msg_group(32 * MIB)
            .mem_min(MIB);
        let spec = small_spec(4);
        let base = simulate(&twophase::plan(&req, &map, &mem, &cfg), &map, &spec);
        let mc = simulate(&mcio::plan(&req, &map, &mem, &cfg), &map, &spec);
        assert!(
            mc.bandwidth_mibs > base.bandwidth_mibs * 1.2,
            "mc {} vs baseline {}",
            mc.bandwidth_mibs,
            base.bandwidth_mibs
        );
    }

    #[test]
    fn phase_attribution_sums_to_chain_time() {
        // Single group, global sync: exchange + io per round partition
        // the round chain exactly, so their sum equals the elapsed time.
        let req = serial_req(Rw::Write, 4, 8 * MIB);
        let map = ProcessMap::new(4, 2, Placement::Block);
        let mem = ProcMemory::uniform(4, 2 * MIB);
        let cfg = CollectiveConfig::with_buffer(2 * MIB);
        let plan = twophase::plan(&req, &map, &mem, &cfg);
        let rep = simulate(&plan, &map, &small_spec(2));
        assert!(!rep.exchange_time.is_zero());
        assert!(!rep.io_time.is_zero());
        let sum = rep.exchange_time + rep.io_time;
        let diff = sum.as_secs_f64() - rep.elapsed.as_secs_f64();
        assert!(
            diff.abs() < rep.elapsed.as_secs_f64() * 0.05,
            "exchange {} + io {} should approximate elapsed {}",
            rep.exchange_time,
            rep.io_time,
            rep.elapsed
        );
        // Writes on this machine are I/O-dominated.
        assert!(rep.io_time > rep.exchange_time);
    }

    #[test]
    fn double_buffering_overlaps_phases() {
        // Many rounds, comparable exchange and I/O costs: pipelining must
        // shorten the collective, and never lengthen it.
        let req = serial_req(Rw::Write, 8, 16 * MIB);
        let map = ProcessMap::new(8, 4, Placement::Block);
        let mem = ProcMemory::uniform(8, MIB);
        let cfg = CollectiveConfig::with_buffer(MIB);
        let plan = twophase::plan(&req, &map, &mem, &cfg);
        assert!(plan.max_rounds() >= 16);
        let spec = small_spec(4);
        let serial = simulate_opts(&plan, &map, &spec, Pipeline::Serial);
        let piped = simulate_opts(&plan, &map, &spec, Pipeline::DoubleBuffered);
        assert!(
            piped.elapsed < serial.elapsed,
            "pipelined {} !< serial {}",
            piped.elapsed,
            serial.elapsed
        );
        // Same bytes either way.
        assert_eq!(piped.bytes, serial.bytes);
        // And reads pipeline too.
        let rreq = serial_req(Rw::Read, 8, 16 * MIB);
        let rplan = twophase::plan(&rreq, &map, &mem, &cfg);
        let rs = simulate_opts(&rplan, &map, &spec, Pipeline::Serial);
        let rp = simulate_opts(&rplan, &map, &spec, Pipeline::DoubleBuffered);
        assert!(rp.elapsed < rs.elapsed);
    }

    #[test]
    fn two_level_exchange_cuts_wire_messages() {
        // Many ranks per node, one aggregator per node: the flat exchange
        // pushes ppn messages per (node, agg) pair over the NIC; the
        // two-level exchange pushes one. With a per-message overhead the
        // two-level shape must win.
        let nranks = 32;
        let map = ProcessMap::new(nranks, 4, Placement::Block);
        let req = serial_req(Rw::Write, nranks, MIB);
        let mem = ProcMemory::uniform(nranks, 4 * MIB);
        let cfg = CollectiveConfig::with_buffer(4 * MIB);
        let plan = twophase::plan(&req, &map, &mem, &cfg);
        let mut spec = small_spec(4);
        spec.message_overhead = mcio_des::SimDuration::from_millis(1);
        let flat = simulate(&plan, &map, &spec);
        let two = simulate_two_level(&plan, &map, &spec);
        assert!(
            two.elapsed < flat.elapsed,
            "two-level {} !< direct {}",
            two.elapsed,
            flat.elapsed
        );
        assert_eq!(two.bytes, flat.bytes);
        // Reads too.
        let rplan = twophase::plan(&serial_req(Rw::Read, nranks, MIB), &map, &mem, &cfg);
        let flat_r = simulate(&rplan, &map, &spec);
        let two_r = simulate_two_level(&rplan, &map, &spec);
        assert!(two_r.elapsed < flat_r.elapsed);
    }

    #[test]
    fn trace_plan_emits_timeline() {
        let req = serial_req(Rw::Write, 4, MIB);
        let map = ProcessMap::new(4, 2, Placement::Block);
        let mem = ProcMemory::uniform(4, MIB);
        let plan = twophase::plan(&req, &map, &mem, &CollectiveConfig::with_buffer(MIB));
        let (rep, json) = trace_plan(&plan, &map, &small_spec(2));
        assert!(rep.bandwidth_mibs > 0.0);
        assert!(json.contains("membus"));
        assert!(json.contains("ost"));
        assert!(json.contains("\"ph\":\"X\""));
    }

    #[test]
    fn straggler_node_contained_by_groups() {
        // Node 0 runs at 20% bandwidth. Under global sync every round
        // waits for it; per-group sync confines the damage to its group.
        let req = serial_req(Rw::Write, 8, 8 * MIB);
        let map = ProcessMap::new(8, 4, Placement::Block);
        let mem = ProcMemory::uniform(8, MIB);
        let per_node = req.total_bytes() / 4;
        let cfg = CollectiveConfig::with_buffer(MIB)
            .msg_group(per_node)
            .msg_ind(per_node / 2)
            .mem_min(0);
        let spec = small_spec(4).with_straggler(0, 0.2);
        let tp = simulate(&twophase::plan(&req, &map, &mem, &cfg), &map, &spec);
        let mcp = simulate(&mcio::plan(&req, &map, &mem, &cfg), &map, &spec);
        assert!(
            mcp.bandwidth_mibs > tp.bandwidth_mibs,
            "MC {} must beat global-sync {} under a straggler",
            mcp.bandwidth_mibs,
            tp.bandwidth_mibs
        );
    }

    #[test]
    fn empty_plan_zero_time() {
        let req = CollectiveRequest::new(Rw::Write, vec![vec![], vec![]]);
        let map = ProcessMap::new(2, 1, Placement::Block);
        let mem = ProcMemory::uniform(2, MIB);
        let plan = twophase::plan(&req, &map, &mem, &CollectiveConfig::default());
        let rep = simulate(&plan, &map, &small_spec(1));
        assert_eq!(rep.bytes, 0);
        assert_eq!(rep.bandwidth_mibs, 0.0);
    }

    #[test]
    fn per_group_sync_beats_global_with_one_slow_group() {
        // Same aggregator layout, but group-local sync lets fast groups
        // finish without waiting for the starved one.
        let req = serial_req(Rw::Write, 8, 8 * MIB);
        let map = ProcessMap::new(8, 4, Placement::Block);
        let mut budgets = vec![8 * MIB; 8];
        budgets[0] = MIB / 2;
        budgets[1] = MIB / 2; // whole node 0 starved
        let mem = ProcMemory::from_budgets(budgets);
        let cfg = CollectiveConfig::with_buffer(8 * MIB)
            .msg_ind(16 * MIB)
            .msg_group(16 * MIB)
            .mem_min(0);
        let spec = small_spec(4);
        let mc = mcio::plan(&req, &map, &mem, &cfg);
        assert_eq!(mc.sync, SyncMode::PerGroup);
        let rep = simulate(&mc, &map, &spec);
        assert!(rep.bandwidth_mibs > 0.0);
    }
}
