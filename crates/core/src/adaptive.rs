//! Closed-loop adaptive re-planning: feed observed fault and
//! contention signals back into the plan *between* collective rounds.
//!
//! The §3 tuner calibrates `Msg_group`/`Msg_ind` once per machine, and
//! aggregator placement ignores what the machine looks like while the
//! collective actually runs. This module closes the loop with a
//! deterministic feedback controller:
//!
//! 1. **Sample** — a [`SignalSnapshot`] summarizes the observed
//!    machine state: per-OST service rate vs nominal (from the same
//!    [`ServiceWindow`](mcio_des::ServiceWindow)s the injector arms),
//!    node memory shocks, and the tenant cross-job interference
//!    fraction. Every input is already deterministic and replayable
//!    from the fault-plan seed, so the controller is too.
//! 2. **Re-tune** — [`crate::tuner::retune_from_signals`] re-solves
//!    `Msg_group`/`Msg_ind` incrementally with a hysteresis dead band:
//!    mild degradation changes nothing (no oscillation), severe
//!    degradation shrinks the group granularity monotonically.
//! 3. **Re-place** — aggregators sitting on memory-shocked nodes are
//!    demoted through the same three-tier failover machinery a crash
//!    uses, but scored with a contention-aware budget
//!    ([`select_contended_replacement`]): shocked nodes lose budget,
//!    crowded nodes are penalized.
//! 4. **Re-split / defer** — remaining rounds are re-split at exact
//!    chunk boundaries (plan `check()` preserved), and rounds whose
//!    probe window sits inside a severe slow-OST window are deferred
//!    past the window exit when the probe says waiting is cheaper than
//!    crawling ([`plan_deferrals`]).
//!
//! The controller runs between rounds *of the probe pass*: like the
//! failover transform in [`crate::exec_faults`], decisions come from a
//! deterministic probe simulation and are actuated as plan transforms
//! plus release gates on the final pass, so the adapted run is still
//! one byte-reproducible DES execution. [`AdaptivePolicy::Off`] takes
//! exactly the static code path — outputs are byte-identical to
//! pre-adaptive builds.

use crate::exec_sim::RoundWindow;
use crate::memory::ProcMemory;
use crate::plan::{CollectivePlan, GroupPlan};
use mcio_cluster::{NodeId, ProcessMap, Rank};
use mcio_faults::FaultSpec;

/// How eagerly the controller re-plans. The knob trades reaction speed
/// against stability: `Conservative` waits for strong, sustained
/// degradation; `Aggressive` reacts to smaller signals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdaptivePolicy {
    /// No adaptation: the static plan runs unchanged (byte-identical
    /// to builds without the adaptive module).
    #[default]
    Off,
    /// Wide dead band, high actuation thresholds.
    Conservative,
    /// Narrow dead band, low actuation thresholds.
    Aggressive,
}

impl AdaptivePolicy {
    /// Parse a CLI policy name.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "off" => Some(AdaptivePolicy::Off),
            "conservative" => Some(AdaptivePolicy::Conservative),
            "aggressive" => Some(AdaptivePolicy::Aggressive),
            _ => None,
        }
    }

    /// Stable lowercase label (metrics, trace args, documents).
    pub fn label(self) -> &'static str {
        match self {
            AdaptivePolicy::Off => "off",
            AdaptivePolicy::Conservative => "conservative",
            AdaptivePolicy::Aggressive => "aggressive",
        }
    }

    /// True when the controller is disabled.
    pub fn is_off(self) -> bool {
        self == AdaptivePolicy::Off
    }

    /// Hysteresis dead band on [`SignalSnapshot::severity`]: at or
    /// below this, the controller is a guaranteed no-op. `Off` returns
    /// an unreachable band (severity is capped at 1).
    pub fn dead_band(self) -> f64 {
        match self {
            AdaptivePolicy::Off => f64::INFINITY,
            AdaptivePolicy::Conservative => 0.25,
            AdaptivePolicy::Aggressive => 0.10,
        }
    }

    /// Minimum probe-observed round stretch (degraded duration over
    /// nominal duration) before a deferral is considered.
    pub fn stretch_threshold(self) -> f64 {
        match self {
            AdaptivePolicy::Off => f64::INFINITY,
            AdaptivePolicy::Conservative => 1.5,
            AdaptivePolicy::Aggressive => 1.15,
        }
    }

    /// Safety margin on the defer-vs-crawl comparison, as a fraction
    /// of the nominal round duration.
    pub fn defer_margin(self) -> f64 {
        match self {
            AdaptivePolicy::Off => f64::INFINITY,
            AdaptivePolicy::Conservative => 0.10,
            AdaptivePolicy::Aggressive => 0.0,
        }
    }

    /// Gain of the incremental re-tune: how fast `Msg_group` shrinks
    /// per unit of severity beyond the dead band.
    pub fn retune_gain(self) -> f64 {
        match self {
            AdaptivePolicy::Off => 0.0,
            AdaptivePolicy::Conservative => 1.0,
            AdaptivePolicy::Aggressive => 2.0,
        }
    }
}

/// Observed state of one OST over the sampling horizon.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OstSignal {
    /// OST index.
    pub ost: usize,
    /// Time-weighted service deficit over the horizon, in `[0, 1]`:
    /// `0` = nominal rate throughout, `1` = stalled for the whole
    /// horizon.
    pub degradation: f64,
    /// Worst instantaneous deficit of any window touching the horizon
    /// (`1 - min rate`).
    pub worst: f64,
    /// Latest end of any degraded window touching the horizon,
    /// nanoseconds (uncapped — may exceed the horizon).
    pub degraded_until_ns: u64,
}

/// A deterministic sample of every signal the controller feeds on.
/// Derived purely from the seeded fault plan and the probe run, so two
/// samples of the same run are identical.
#[derive(Debug, Clone, PartialEq)]
pub struct SignalSnapshot {
    /// Sampling horizon (the nominal run length), nanoseconds.
    pub horizon_ns: u64,
    /// Per-OST signals, ascending OST index; only OSTs with at least
    /// one perturbation window appear.
    pub osts: Vec<OstSignal>,
    /// Memory shocks `(node, drop_frac)` in spec order.
    pub shocks: Vec<(usize, f64)>,
    /// Cross-job OST interference fraction in `[0, 1]` (zero for solo
    /// runs; the probe's `ost_overlap` for tenants).
    pub interference: f64,
}

impl SignalSnapshot {
    /// Sample the signals of `fspec` over `[0, horizon_ns)` on a
    /// machine with `nosts` OSTs.
    pub fn sample(fspec: &FaultSpec, nosts: usize, horizon_ns: u64, interference: f64) -> Self {
        let horizon = horizon_ns.max(1);
        let mut osts = Vec::new();
        for ost in 0..nosts {
            let windows = fspec.ost_windows(ost);
            if windows.is_empty() {
                continue;
            }
            let mut deficit_ns = 0.0f64;
            let mut worst = 0.0f64;
            let mut until = 0u64;
            for w in &windows {
                let start = w.start.as_nanos();
                let end = w.end.as_nanos();
                let lo = start.min(horizon);
                let hi = end.min(horizon);
                if hi <= lo || w.rate >= 1.0 {
                    continue;
                }
                deficit_ns += (hi - lo) as f64 * (1.0 - w.rate);
                worst = worst.max(1.0 - w.rate);
                until = until.max(end);
            }
            if worst > 0.0 {
                osts.push(OstSignal {
                    ost,
                    degradation: (deficit_ns / horizon as f64).clamp(0.0, 1.0),
                    worst,
                    degraded_until_ns: until,
                });
            }
        }
        SignalSnapshot {
            horizon_ns: horizon,
            osts,
            shocks: fspec
                .mem_shocks()
                .iter()
                .map(|&(node, frac, _)| (node, frac))
                .collect(),
            interference: interference.clamp(0.0, 1.0),
        }
    }

    /// Scalar severity in `[0, 1]` the hysteresis bands compare
    /// against: the worst of (time-weighted OST deficit, shock
    /// fraction, interference fraction).
    pub fn severity(&self) -> f64 {
        let ost = self
            .osts
            .iter()
            .map(|o| o.degradation)
            .fold(0.0f64, f64::max);
        let shock = self.shocks.iter().map(|&(_, f)| f).fold(0.0f64, f64::max);
        ost.max(shock).max(self.interference).clamp(0.0, 1.0)
    }

    /// Fraction of the shock budget lost on `node` (0 when unshocked;
    /// multiple shocks compose by keeping the worst).
    pub fn shock_frac(&self, node: usize) -> f64 {
        self.shocks
            .iter()
            .filter(|&&(n, _)| n == node)
            .map(|&(_, f)| f)
            .fold(0.0f64, f64::max)
    }
}

/// One deferral decision: hold round `round` of `group` behind a gate
/// releasing at `release_ns`, because the probe says the round would
/// otherwise crawl through a degraded OST window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct DeferDecision {
    /// Plan group key (`None` = the global chain).
    pub group: Option<usize>,
    /// Round index the gate holds back.
    pub round: usize,
    /// Decision instant: the degraded slot's probed start.
    pub from_ns: u64,
    /// Gate release: the degraded window's exit.
    pub release_ns: u64,
    /// Probe-observed stretch (degraded duration / nominal duration).
    pub stretch: f64,
}

/// Estimate how much tenancy alone stretches a job's rounds: the
/// median faulted-over-nominal duration ratio across probe rounds that
/// never overlap a degraded OST window — their stretch is pure
/// contention, so it calibrates what "nominal" means on the shared
/// machine. Returns 1.0 (no correction) when every round touches a
/// window, which is also the solo-probe case where faulted and clean
/// share a timeline.
pub(crate) fn contention_stretch(
    fspec: &FaultSpec,
    nosts: usize,
    clean: &[RoundWindow],
    faulted: &[RoundWindow],
    offset_ns: u64,
) -> f64 {
    let mut degraded_windows: Vec<(u64, u64)> = Vec::new();
    for ost in 0..nosts {
        for w in fspec.ost_windows(ost) {
            if w.rate < 1.0 {
                degraded_windows.push((w.start.as_nanos(), w.end.as_nanos()));
            }
        }
    }
    let mut ratios: Vec<f64> = Vec::new();
    for fw in faulted {
        let Some(cw) = clean
            .iter()
            .find(|c| c.group == fw.group && c.round == fw.round)
        else {
            continue;
        };
        let cdur = cw.end_ns.saturating_sub(cw.start_ns);
        let fdur = fw.end_ns.saturating_sub(fw.start_ns);
        if cdur == 0 || fdur == 0 {
            continue;
        }
        let (fstart, fend) = (fw.start_ns + offset_ns, fw.end_ns + offset_ns);
        if degraded_windows
            .iter()
            .any(|&(s, e)| s < fend && e > fstart)
        {
            continue;
        }
        ratios.push(fdur as f64 / cdur as f64);
    }
    if ratios.is_empty() {
        return 1.0;
    }
    ratios.sort_by(|a, b| a.partial_cmp(b).expect("duration ratios are finite"));
    ratios[ratios.len() / 2].max(1.0)
}

/// Decide which round slots to defer past a degraded OST window.
///
/// For each slot, compare its nominal probe window (`clean`) against
/// its degraded probe window (`faulted`, shifted by `offset_ns` when
/// the job arrives late). A slot is deferred only when the probe says
/// waiting wins: the degraded windows it overlaps end early enough
/// that `window_exit + nominal_duration (+ margin)` beats the observed
/// degraded finish. `dur_scale` re-bases "nominal" for contended
/// machines (see [`contention_stretch`]); solo callers pass 1.0. Stall
/// windows never qualify (the un-deferred run already waits at full
/// stop and loses nothing), which keeps the controller naturally
/// conservative.
pub(crate) fn plan_deferrals(
    fspec: &FaultSpec,
    policy: AdaptivePolicy,
    nosts: usize,
    clean: &[RoundWindow],
    faulted: &[RoundWindow],
    offset_ns: u64,
    dur_scale: f64,
) -> Vec<DeferDecision> {
    let mut degraded_windows: Vec<(u64, u64)> = Vec::new();
    for ost in 0..nosts {
        for w in fspec.ost_windows(ost) {
            if w.rate < 1.0 {
                degraded_windows.push((w.start.as_nanos(), w.end.as_nanos()));
            }
        }
    }
    if degraded_windows.is_empty() {
        return Vec::new();
    }
    degraded_windows.sort_unstable();

    let mut out = Vec::new();
    for fw in faulted {
        let Some(cw) = clean
            .iter()
            .find(|c| c.group == fw.group && c.round == fw.round)
        else {
            continue;
        };
        let raw_cdur = cw.end_ns.saturating_sub(cw.start_ns);
        let fdur = fw.end_ns.saturating_sub(fw.start_ns);
        if raw_cdur == 0 || fdur == 0 {
            continue;
        }
        // The contended-but-clean estimate of the slot's duration.
        let cdur = (raw_cdur as f64 * dur_scale.max(1.0)) as u64;
        let stretch = fdur as f64 / cdur.max(1) as f64;
        if stretch < policy.stretch_threshold() {
            continue;
        }
        let (fstart, fend) = (fw.start_ns + offset_ns, fw.end_ns + offset_ns);
        // Latest exit among degraded windows the stretched slot overlaps.
        let exit = degraded_windows
            .iter()
            .filter(|&&(s, e)| s < fend && e > fstart)
            .map(|&(_, e)| e)
            .max();
        let Some(exit) = exit else { continue };
        if exit <= fstart {
            continue;
        }
        // Defer only when waiting beats crawling, with the policy margin.
        let margin = (cdur as f64 * policy.defer_margin()) as u64;
        if exit.saturating_add(cdur).saturating_add(margin) >= fend {
            continue;
        }
        out.push(DeferDecision {
            group: fw.group,
            round: fw.round,
            from_ns: fstart,
            release_ns: exit,
            stretch,
        });
    }
    out.sort_by_key(|d| (d.group, d.round));
    out
}

/// Contention-aware replacement selection for an adaptive demotion:
/// the three-tier search of [`crate::exec_faults`]'s failover path,
/// but scored with an *effective* budget — shocked nodes lose the
/// shocked fraction, and nodes already hosting aggregators of the
/// group are penalized so demotions spread instead of piling up.
/// Integer scoring keeps the choice byte-deterministic.
pub(crate) fn select_contended_replacement(
    g: &GroupPlan,
    map: &ProcessMap,
    mem: &ProcMemory,
    down: NodeId,
    signals: &SignalSnapshot,
) -> Option<(Rank, u64)> {
    let aggs_on = |node: NodeId| {
        g.aggregators
            .iter()
            .filter(|a| map.node_of(a.rank) == node)
            .count() as u64
    };
    let effective = |r: Rank, budget: u64| {
        let node = map.node_of(r);
        let keep = 1.0 - signals.shock_frac(node.0).clamp(0.0, 1.0);
        let kept = (budget as f64 * keep) as u64;
        kept / (1 + aggs_on(node))
    };
    let fresh = g
        .ranks
        .iter()
        .copied()
        .filter(|&r| map.node_of(r) != down)
        .filter(|&r| !g.aggregators.iter().any(|a| a.rank == r))
        .max_by_key(|&r| (effective(r, mem.budget(r)), std::cmp::Reverse(r.0)));
    if let Some(r) = fresh {
        return Some((r, mem.budget(r).max(1)));
    }
    if let Some(a) = g
        .aggregators
        .iter()
        .filter(|a| map.node_of(a.rank) != down)
        .max_by_key(|a| (effective(a.rank, a.buffer), std::cmp::Reverse(a.rank.0)))
    {
        return Some((a.rank, a.buffer));
    }
    (0..map.nranks())
        .map(Rank)
        .filter(|&r| map.node_of(r) != down)
        .max_by_key(|&r| (effective(r, mem.budget(r)), std::cmp::Reverse(r.0)))
        .map(|r| (r, mem.budget(r).max(1)))
}

/// The coarsest I/O granularity the plan actually uses: the largest
/// per-aggregator window of any round. This is the incremental
/// re-tune's `Msg_group` baseline — the observed round granularity —
/// and [`crate::tuner::retune_from_signals`] shrinks it from here.
pub fn observed_granularity(plan: &CollectivePlan) -> u64 {
    plan.groups
        .iter()
        .flat_map(|g| g.rounds.iter())
        .flat_map(|r| r.ios.iter())
        .map(|io| io.window.len)
        .max()
        .unwrap_or(1)
        .max(1)
}

/// What the controller did to one run (surfaced on the outcome and the
/// `adaptive.*` metrics).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AdaptiveOutcome {
    /// The policy that ran.
    pub policy: AdaptivePolicy,
    /// Sampled severity in `[0, 1]` (0 when the controller never
    /// sampled — policy off or an empty fault plan).
    pub severity: f64,
    /// Rounds deferred past a degraded OST window.
    pub deferrals: usize,
    /// Aggregators demoted off shocked nodes.
    pub demotions: usize,
    /// Extra rounds created by adaptive re-splitting.
    pub resplits: usize,
    /// `(old, new)` group granularity when the re-tune moved it.
    pub retuned: Option<(u64, u64)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slow_spec(factor: f64, from_ms: u64, until_ms: u64) -> FaultSpec {
        FaultSpec::parse(&format!(
            "seed 1\nost_slow(0, {factor}, {from_ms}ms..{until_ms}ms)"
        ))
        .unwrap()
    }

    #[test]
    fn snapshot_weights_deficit_by_time() {
        // Quarter speed for half the horizon: deficit 0.75 * 0.5.
        let spec = slow_spec(4.0, 0, 5);
        let snap = SignalSnapshot::sample(&spec, 2, 10_000_000, 0.0);
        assert_eq!(snap.osts.len(), 1);
        let o = &snap.osts[0];
        assert_eq!(o.ost, 0);
        assert!((o.degradation - 0.375).abs() < 1e-9, "{}", o.degradation);
        assert!((o.worst - 0.75).abs() < 1e-9);
        assert_eq!(o.degraded_until_ns, 5_000_000);
        assert!((snap.severity() - 0.375).abs() < 1e-9);
    }

    #[test]
    fn snapshot_ignores_windows_past_horizon() {
        let spec = slow_spec(8.0, 20, 30);
        let snap = SignalSnapshot::sample(&spec, 1, 10_000_000, 0.0);
        assert!(snap.osts.is_empty(), "window outside horizon: {snap:?}");
        assert_eq!(snap.severity(), 0.0);
    }

    #[test]
    fn severity_takes_the_worst_signal() {
        let spec = FaultSpec::parse("seed 1\nost_slow(0, 2.0, 0ms..10ms)\nmem_shock(3, 0.9, 1ms)")
            .unwrap();
        let snap = SignalSnapshot::sample(&spec, 1, 10_000_000, 0.3);
        assert!((snap.severity() - 0.9).abs() < 1e-9, "{}", snap.severity());
        assert!((snap.shock_frac(3) - 0.9).abs() < 1e-9);
        assert_eq!(snap.shock_frac(0), 0.0);
        let calm = SignalSnapshot::sample(&FaultSpec::none(), 1, 1_000, 0.3);
        assert!((calm.severity() - 0.3).abs() < 1e-9, "interference counts");
    }

    #[test]
    fn deferral_requires_waiting_to_win() {
        let w = |group, round, start_ns: u64, end_ns: u64| RoundWindow {
            group,
            round,
            start_ns,
            end_ns,
        };
        // Nominal 1 ms round, crawling to 8 ms inside a slow window that
        // ends at 2 ms: waiting (2 ms + 1 ms) beats crawling (8 ms).
        let spec = slow_spec(8.0, 0, 2);
        let clean = [w(None, 0, 0, 1_000_000)];
        let faulted = [w(None, 0, 0, 8_000_000)];
        let d = plan_deferrals(
            &spec,
            AdaptivePolicy::Conservative,
            1,
            &clean,
            &faulted,
            0,
            1.0,
        );
        assert_eq!(d.len(), 1);
        assert_eq!((d[0].group, d[0].round), (None, 0));
        assert_eq!(d[0].release_ns, 2_000_000);
        assert!(d[0].stretch > 7.0);

        // Same stretch but the window outlives the crawl: no deferral.
        let long = slow_spec(8.0, 0, 50);
        assert!(plan_deferrals(
            &long,
            AdaptivePolicy::Conservative,
            1,
            &clean,
            &faulted,
            0,
            1.0,
        )
        .is_empty());

        // Below the stretch threshold: no deferral.
        let mild = [w(None, 0, 0, 1_200_000)];
        assert!(plan_deferrals(
            &spec,
            AdaptivePolicy::Conservative,
            1,
            &clean,
            &mild,
            0,
            1.0,
        )
        .is_empty());
    }

    #[test]
    fn deferrals_are_deterministic_and_sorted() {
        let spec = slow_spec(8.0, 0, 2);
        let w = |group, round, start_ns: u64, end_ns: u64| RoundWindow {
            group,
            round,
            start_ns,
            end_ns,
        };
        let clean = [w(Some(1), 0, 0, 1_000_000), w(Some(0), 0, 0, 1_000_000)];
        let faulted = [w(Some(1), 0, 0, 8_000_000), w(Some(0), 0, 0, 8_000_000)];
        let a = plan_deferrals(
            &spec,
            AdaptivePolicy::Aggressive,
            1,
            &clean,
            &faulted,
            0,
            1.0,
        );
        let b = plan_deferrals(
            &spec,
            AdaptivePolicy::Aggressive,
            1,
            &clean,
            &faulted,
            0,
            1.0,
        );
        assert_eq!(a, b);
        assert_eq!(a.len(), 2);
        assert!(a[0].group < a[1].group, "sorted by (group, round)");
    }

    #[test]
    fn contention_stretch_calibrates_from_unwindowed_rounds() {
        let w = |round, start_ns: u64, end_ns: u64| RoundWindow {
            group: None,
            round,
            start_ns,
            end_ns,
        };
        // Slow window 0..2 ms. Rounds 1 and 2 run after it and stretch
        // 3x — pure contention. Round 0 crawls inside it and must not
        // pollute the estimate.
        let spec = slow_spec(8.0, 0, 2);
        let clean = [
            w(0, 0, 1_000_000),
            w(1, 1_000_000, 2_000_000),
            w(2, 2_000_000, 3_000_000),
        ];
        let faulted = [
            w(0, 0, 8_000_000),
            w(1, 8_000_000, 11_000_000),
            w(2, 11_000_000, 14_000_000),
        ];
        let s = contention_stretch(&spec, 1, &clean, &faulted, 0);
        assert!((s - 3.0).abs() < 1e-9, "median pure-contention ratio: {s}");
        // Every round inside the window: no calibration signal.
        let all_in = slow_spec(8.0, 0, 50);
        assert_eq!(contention_stretch(&all_in, 1, &clean, &faulted, 0), 1.0);

        // The scale dampens marginal deferrals: a round crawling to
        // 8 ms against a 1 ms nominal defers at scale 1, but if pure
        // contention already explains 6x of it, waiting no longer wins
        // (2 ms exit + 6 ms contended-clean ≥ 8 ms observed finish).
        let one_clean = [w(0, 0, 1_000_000)];
        let one_faulted = [w(0, 0, 8_000_000)];
        let d1 = plan_deferrals(
            &spec,
            AdaptivePolicy::Aggressive,
            1,
            &one_clean,
            &one_faulted,
            0,
            1.0,
        );
        assert_eq!(d1.len(), 1);
        let d6 = plan_deferrals(
            &spec,
            AdaptivePolicy::Aggressive,
            1,
            &one_clean,
            &one_faulted,
            0,
            6.0,
        );
        assert!(d6.is_empty(), "contention-aware scale culls the deferral");
    }

    #[test]
    fn policy_parse_and_labels_round_trip() {
        for p in [
            AdaptivePolicy::Off,
            AdaptivePolicy::Conservative,
            AdaptivePolicy::Aggressive,
        ] {
            assert_eq!(AdaptivePolicy::parse(p.label()), Some(p));
        }
        assert_eq!(AdaptivePolicy::parse("bogus"), None);
        assert!(AdaptivePolicy::Off.is_off());
        assert!(AdaptivePolicy::Conservative.dead_band() > AdaptivePolicy::Aggressive.dead_band());
    }

    #[test]
    fn observed_granularity_is_the_largest_window() {
        use crate::config::CollectiveConfig;
        use crate::request::CollectiveRequest;
        use mcio_cluster::{Placement, ProcessMap};
        use mcio_pfs::Extent;
        let chunk = 1u64 << 20;
        let req = CollectiveRequest::new(
            mcio_pfs::Rw::Write,
            (0..4u64)
                .map(|r| vec![Extent::new(r * chunk, chunk)])
                .collect(),
        );
        let map = ProcessMap::new(4, 2, Placement::Block);
        let mem = ProcMemory::uniform(4, chunk);
        let plan = crate::mcio::plan(&req, &map, &mem, &CollectiveConfig::with_buffer(chunk));
        let gran = observed_granularity(&plan);
        let max_win = plan
            .groups
            .iter()
            .flat_map(|g| g.rounds.iter())
            .flat_map(|r| r.ios.iter())
            .map(|io| io.window.len)
            .max()
            .unwrap();
        assert_eq!(gran, max_win);
        assert!(gran >= 1);
    }
}
