//! The collective plan: the pure-data output of both planners.
//!
//! A plan says exactly which bytes move where, in which round, and who
//! writes/reads them — nothing about *how long* that takes (the timing
//! executor's job) or the actual byte values (the functional executors').
//! Keeping the plan declarative lets the three executors cross-check one
//! another and lets tests state invariants ("every requested byte is
//! aggregated exactly once") directly against the data.

use crate::config::Strategy;
use crate::request::CollectiveRequest;
use mcio_cluster::{ProcessMap, Rank};
use mcio_des::OnlineStats;
use mcio_pfs::extent::{coalesce, total_bytes};
use mcio_pfs::{Extent, Rw};
use std::collections::BTreeMap;

/// One rank-to-rank transfer: the data of a set of file extents, packed
/// into a single message (as ROMIO packs all pieces for a peer into one
/// `alltoallv` buffer).
///
/// For a **write** plan, `src` is the requesting rank and `dst` the
/// aggregator; for a **read** plan, `src` is the aggregator and `dst` the
/// requesting rank. `extents` identify which bytes move, in offset order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// Sending rank.
    pub src: Rank,
    /// Receiving rank.
    pub dst: Rank,
    /// The file extents whose data this message carries.
    pub extents: Vec<Extent>,
}

impl Message {
    /// Payload size of the message.
    pub fn bytes(&self) -> u64 {
        total_bytes(&self.extents)
    }
}

/// One aggregator's file-system access in one round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IoOp {
    /// The aggregator performing the access.
    pub agg: Rank,
    /// The round window: the `buffer`-sized slice of the aggregator's
    /// file domain this round covers.
    pub window: Extent,
    /// The requested extents inside the window, coalesced — each becomes
    /// one contiguous PFS request.
    pub extents: Vec<Extent>,
}

impl IoOp {
    /// Bytes this access moves.
    pub fn bytes(&self) -> u64 {
        total_bytes(&self.extents)
    }
}

/// One synchronized exchange+I/O step.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Round {
    /// Data shuffle messages of this round.
    pub messages: Vec<Message>,
    /// File accesses of this round.
    pub ios: Vec<IoOp>,
}

impl Round {
    /// True when nothing happens this round.
    pub fn is_empty(&self) -> bool {
        self.messages.is_empty() && self.ios.is_empty()
    }

    /// Merge messages by `(src, dst)` into per-pair byte totals — what
    /// the timing executor lowers to one transfer each (ROMIO packs all
    /// extents for a peer into one `alltoallv` buffer).
    pub fn transfers(&self) -> BTreeMap<(Rank, Rank), u64> {
        let mut map = BTreeMap::new();
        for m in &self.messages {
            *map.entry((m.src, m.dst)).or_insert(0) += m.bytes();
        }
        map
    }

    /// Total shuffled bytes this round.
    pub fn message_bytes(&self) -> u64 {
        self.messages.iter().map(Message::bytes).sum()
    }

    /// Total file-system bytes this round.
    pub fn io_bytes(&self) -> u64 {
        self.ios.iter().map(IoOp::bytes).sum()
    }
}

/// An aggregator with its file domain and buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AggregatorAssignment {
    /// The process acting as aggregator.
    pub rank: Rank,
    /// The contiguous file domain it owns.
    pub fd: Extent,
    /// Its aggregation buffer in bytes (bounds the round window size).
    pub buffer: u64,
    /// Requested bytes inside the file domain.
    pub data_bytes: u64,
}

impl AggregatorAssignment {
    /// Rounds this aggregator needs: `ceil(data-covered window span /
    /// buffer)` over its file domain.
    pub fn rounds(&self) -> usize {
        if self.fd.is_empty() || self.buffer == 0 {
            0
        } else {
            self.fd.len.div_ceil(self.buffer) as usize
        }
    }
}

/// The plan of one aggregation group (the baseline is a single group).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupPlan {
    /// Ranks belonging to the group (senders/receivers).
    pub ranks: Vec<Rank>,
    /// Aggregators of the group, in file-domain order.
    pub aggregators: Vec<AggregatorAssignment>,
    /// Synchronized rounds.
    pub rounds: Vec<Round>,
}

impl GroupPlan {
    /// Total bytes this group's aggregators move to/from the PFS.
    pub fn io_bytes(&self) -> u64 {
        self.rounds.iter().map(Round::io_bytes).sum()
    }

    /// Total shuffled bytes in this group.
    pub fn message_bytes(&self) -> u64 {
        self.rounds.iter().map(Round::message_bytes).sum()
    }
}

/// Synchronization scope between rounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncMode {
    /// Every rank synchronizes every round (ROMIO's `alltoallv` per
    /// round across the whole communicator).
    Global,
    /// Rounds synchronize only within each aggregation group (the
    /// memory-conscious design: groups proceed independently).
    PerGroup,
}

/// Decision counters from the planning pipeline: how the group division,
/// partition tree, and placement loop arrived at the final aggregator
/// layout. Purely diagnostic — two plans that differ only in `diag`
/// execute identically.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanDiag {
    /// Partition-tree leaves built across all groups *before* placement
    /// started remerging (the intended file-domain count).
    pub ptree_leaves: usize,
    /// Domains remerged into a neighbor during placement (§3.2).
    pub remerges: usize,
    /// Placements that went through after relaxing `Mem_min`/`N_ah`.
    pub relaxations: usize,
}

/// A complete collective plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CollectivePlan {
    /// Read or write.
    pub rw: Rw,
    /// Which planner produced it.
    pub strategy: Strategy,
    /// Round synchronization scope.
    pub sync: SyncMode,
    /// Aggregation groups (baseline: exactly one).
    pub groups: Vec<GroupPlan>,
    /// Planner decision counters.
    pub diag: PlanDiag,
}

impl CollectivePlan {
    /// All aggregator assignments across groups.
    pub fn aggregators(&self) -> impl Iterator<Item = &AggregatorAssignment> {
        self.groups.iter().flat_map(|g| g.aggregators.iter())
    }

    /// Number of aggregators.
    pub fn naggs(&self) -> usize {
        self.groups.iter().map(|g| g.aggregators.len()).sum()
    }

    /// The longest round sequence of any group (the global round count
    /// under [`SyncMode::Global`]).
    pub fn max_rounds(&self) -> usize {
        self.groups
            .iter()
            .map(|g| g.rounds.len())
            .max()
            .unwrap_or(0)
    }

    /// Summary statistics (optionally topology-aware).
    pub fn stats(&self, map: Option<&ProcessMap>) -> PlanStats {
        let mut message_bytes = 0u64;
        let mut intra_node_bytes = 0u64;
        let mut messages = 0usize;
        let mut io_requests = 0usize;
        let mut io_bytes = 0u64;
        let mut peak_window = 0u64;
        for g in &self.groups {
            for r in &g.rounds {
                messages += r.messages.len();
                for m in &r.messages {
                    message_bytes += m.bytes();
                    if let Some(map) = map {
                        if map.node_of(m.src) == map.node_of(m.dst) {
                            intra_node_bytes += m.bytes();
                        }
                    }
                }
                for io in &r.ios {
                    io_requests += io.extents.len();
                    io_bytes += io.bytes();
                    peak_window = peak_window.max(io.bytes());
                }
            }
        }
        let buffers: OnlineStats = self.aggregators().map(|a| a.buffer as f64).collect();
        PlanStats {
            ngroups: self.groups.len(),
            naggs: self.naggs(),
            max_rounds: self.max_rounds(),
            messages,
            message_bytes,
            intra_node_bytes,
            io_requests,
            io_bytes,
            peak_window,
            buffer_stats: buffers,
        }
    }

    /// Record the planner's decision counters and shape statistics into
    /// a metrics registry (`plan.*` namespace).
    pub fn record_into(&self, reg: &mcio_obs::Registry) {
        reg.describe("plan.groups", "groups", "Aggregation groups");
        reg.describe("plan.aggregators", "aggregators", "Aggregator assignments");
        reg.describe("plan.rounds", "rounds", "Longest per-group round sequence");
        reg.describe(
            "plan.ptree_leaves",
            "domains",
            "Partition-tree leaves built before remerging",
        );
        reg.describe(
            "plan.remerges",
            "events",
            "Domains remerged during placement",
        );
        reg.describe(
            "plan.relaxations",
            "events",
            "Placements that relaxed Mem_min/N_ah",
        );
        reg.describe("plan.messages", "messages", "Shuffle messages planned");
        reg.describe("plan.message_bytes", "bytes", "Shuffled bytes planned");
        reg.describe(
            "plan.io_requests",
            "requests",
            "Contiguous PFS requests planned",
        );
        reg.describe("plan.io_bytes", "bytes", "PFS bytes planned");
        reg.describe(
            "plan.peak_window",
            "bytes",
            "Largest single-round aggregation window (per-aggregator memory high-water mark)",
        );
        reg.describe(
            "plan.buffer_cv",
            "ratio",
            "Coefficient of variation of aggregator buffer sizes",
        );
        let s = self.stats(None);
        let strat = [("strategy", self.strategy.label())];
        reg.set_gauge("plan.groups", &strat, s.ngroups as f64);
        reg.set_gauge("plan.aggregators", &strat, s.naggs as f64);
        reg.set_gauge("plan.rounds", &strat, s.max_rounds as f64);
        reg.inc("plan.ptree_leaves", &strat, self.diag.ptree_leaves as u64);
        reg.inc("plan.remerges", &strat, self.diag.remerges as u64);
        reg.inc("plan.relaxations", &strat, self.diag.relaxations as u64);
        reg.inc("plan.messages", &strat, s.messages as u64);
        reg.inc("plan.message_bytes", &strat, s.message_bytes);
        reg.inc("plan.io_requests", &strat, s.io_requests as u64);
        reg.inc("plan.io_bytes", &strat, s.io_bytes);
        reg.max_gauge("plan.peak_window", &strat, s.peak_window as f64);
        reg.set_gauge("plan.buffer_cv", &strat, s.buffer_stats.cv());
    }

    /// Check structural invariants against the request this plan was
    /// built from. Returns a description of the first violation.
    ///
    /// Invariants:
    /// 1. The union of all I/O extents equals the request's coverage
    ///    (every requested byte hits the file system exactly once — I/O
    ///    extents never overlap).
    /// 2. In every round, each aggregator's message bytes match the data
    ///    the requesting ranks hold in its window.
    /// 3. Round windows never exceed the aggregator's buffer.
    /// 4. Message endpoints agree with the plan direction.
    pub fn check(&self, req: &CollectiveRequest) -> Result<(), String> {
        // (1) Coverage.
        let mut all_io: Vec<Extent> = Vec::new();
        for g in &self.groups {
            for r in &g.rounds {
                for io in &r.ios {
                    all_io.extend(io.extents.iter().copied());
                }
            }
        }
        let io_total = total_bytes(&all_io);
        let io_cover = coalesce(all_io);
        let req_cover = req.coverage();
        if io_cover != req_cover {
            return Err(format!(
                "I/O coverage mismatch: plan covers {io_cover:?}, request covers {req_cover:?}"
            ));
        }
        let covered: u64 = io_cover.iter().map(|e| e.len).sum();
        if io_total != covered {
            return Err(format!(
                "I/O extents overlap: {io_total} bytes issued for {covered} covered"
            ));
        }

        for (gi, g) in self.groups.iter().enumerate() {
            for (ri, r) in g.rounds.iter().enumerate() {
                // (2) Message conservation per aggregator window. Only
                // the group's member ranks shuffle through its
                // aggregators — other groups' data in the same offset
                // range belongs to *their* windows.
                for io in &r.ios {
                    let expect: u64 = g
                        .ranks
                        .iter()
                        .map(|&rank| req.ranks[rank.0].bytes_in(&io.window))
                        .sum();
                    let agg = io.agg;
                    let got: u64 = r
                        .messages
                        .iter()
                        .filter(|m| match self.rw {
                            Rw::Write => m.dst == agg,
                            Rw::Read => m.src == agg,
                        })
                        .flat_map(|m| m.extents.iter())
                        .filter(|e| io.window.contains_extent(e))
                        .map(|e| e.len)
                        .sum();
                    if got != expect {
                        return Err(format!(
                            "group {gi} round {ri} agg {agg}: {got} message bytes for {expect} requested in window {}",
                            io.window
                        ));
                    }
                    // (3) Window fits the buffer.
                    let buffer = g
                        .aggregators
                        .iter()
                        .find(|a| a.rank == agg)
                        .map(|a| a.buffer)
                        .ok_or_else(|| format!("group {gi}: io by unassigned aggregator {agg}"))?;
                    if io.window.len > buffer {
                        return Err(format!(
                            "group {gi} round {ri} agg {agg}: window {} exceeds buffer {buffer}",
                            io.window
                        ));
                    }
                }
                // (4) Direction sanity: aggregator end of each message is
                // an assigned aggregator of this group.
                for m in &r.messages {
                    let agg_end = match self.rw {
                        Rw::Write => m.dst,
                        Rw::Read => m.src,
                    };
                    if !g.aggregators.iter().any(|a| a.rank == agg_end) {
                        return Err(format!(
                            "group {gi} round {ri}: message endpoint {agg_end} is not an aggregator"
                        ));
                    }
                }
            }
        }
        Ok(())
    }
}

/// Summary numbers of a plan.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanStats {
    /// Aggregation groups.
    pub ngroups: usize,
    /// Aggregators.
    pub naggs: usize,
    /// Longest per-group round sequence.
    pub max_rounds: usize,
    /// Shuffle messages.
    pub messages: usize,
    /// Shuffled bytes.
    pub message_bytes: u64,
    /// Shuffled bytes that stayed on-node (0 unless a topology was given).
    pub intra_node_bytes: u64,
    /// Contiguous PFS requests.
    pub io_requests: usize,
    /// PFS bytes.
    pub io_bytes: u64,
    /// Largest single-round aggregation buffer actually filled — the
    /// memory high-water mark per aggregator.
    pub peak_window: u64,
    /// Distribution of aggregator buffer sizes (its
    /// [`OnlineStats::cv`] is the paper's "memory consumption variance
    /// among aggregators").
    pub buffer_stats: OnlineStats,
}

impl PlanStats {
    /// Fraction of shuffle traffic that stayed on-node.
    pub fn intra_node_fraction(&self) -> f64 {
        if self.message_bytes == 0 {
            0.0
        } else {
            self.intra_node_bytes as f64 / self.message_bytes as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_plan() -> (CollectivePlan, CollectiveRequest) {
        // Two ranks write [0,10) and [10,20); one aggregator (rank 0),
        // buffer 20, one round.
        let req = CollectiveRequest::new(
            Rw::Write,
            vec![vec![Extent::new(0, 10)], vec![Extent::new(10, 10)]],
        );
        let window = Extent::new(0, 20);
        let plan = CollectivePlan {
            rw: Rw::Write,
            strategy: Strategy::TwoPhase,
            sync: SyncMode::Global,
            diag: PlanDiag::default(),
            groups: vec![GroupPlan {
                ranks: vec![Rank(0), Rank(1)],
                aggregators: vec![AggregatorAssignment {
                    rank: Rank(0),
                    fd: window,
                    buffer: 20,
                    data_bytes: 20,
                }],
                rounds: vec![Round {
                    messages: vec![
                        Message {
                            src: Rank(0),
                            dst: Rank(0),
                            extents: vec![Extent::new(0, 10)],
                        },
                        Message {
                            src: Rank(1),
                            dst: Rank(0),
                            extents: vec![Extent::new(10, 10)],
                        },
                    ],
                    ios: vec![IoOp {
                        agg: Rank(0),
                        window,
                        extents: vec![window],
                    }],
                }],
            }],
        };
        (plan, req)
    }

    #[test]
    fn valid_plan_checks_out() {
        let (plan, req) = simple_plan();
        assert_eq!(plan.check(&req), Ok(()));
        assert_eq!(plan.naggs(), 1);
        assert_eq!(plan.max_rounds(), 1);
    }

    #[test]
    fn stats_accounting() {
        let (plan, _req) = simple_plan();
        let stats = plan.stats(None);
        assert_eq!(stats.messages, 2);
        assert_eq!(stats.message_bytes, 20);
        assert_eq!(stats.io_requests, 1);
        assert_eq!(stats.io_bytes, 20);
        assert_eq!(stats.peak_window, 20);
        assert_eq!(stats.buffer_stats.mean(), 20.0);
    }

    #[test]
    fn intra_node_fraction_with_topology() {
        let (plan, _req) = simple_plan();
        // Both ranks on one node: everything intra-node.
        let map = ProcessMap::new(2, 1, mcio_cluster::Placement::Block);
        let stats = plan.stats(Some(&map));
        assert_eq!(stats.intra_node_bytes, 20);
        assert!((stats.intra_node_fraction() - 1.0).abs() < 1e-12);
        // Two nodes: nothing intra-node except rank 0's self-message.
        let map = ProcessMap::new(2, 2, mcio_cluster::Placement::Block);
        let stats = plan.stats(Some(&map));
        assert_eq!(stats.intra_node_bytes, 10);
    }

    #[test]
    fn check_catches_missing_coverage() {
        let (mut plan, req) = simple_plan();
        plan.groups[0].rounds[0].ios[0].extents = vec![Extent::new(0, 10)];
        assert!(plan.check(&req).unwrap_err().contains("coverage"));
    }

    #[test]
    fn check_catches_overlapping_io() {
        let (mut plan, req) = simple_plan();
        plan.groups[0].rounds[0].ios[0].extents = vec![Extent::new(0, 15), Extent::new(10, 10)];
        assert!(plan.check(&req).unwrap_err().contains("overlap"));
    }

    #[test]
    fn check_catches_lost_message() {
        let (mut plan, req) = simple_plan();
        plan.groups[0].rounds[0].messages.pop();
        assert!(plan.check(&req).unwrap_err().contains("message bytes"));
    }

    #[test]
    fn check_catches_buffer_overflow() {
        let (mut plan, req) = simple_plan();
        plan.groups[0].aggregators[0].buffer = 10;
        assert!(plan.check(&req).unwrap_err().contains("exceeds buffer"));
    }

    #[test]
    fn check_catches_rogue_endpoint() {
        let (mut plan, req) = simple_plan();
        plan.groups[0].rounds[0].messages[1].dst = Rank(1);
        let err = plan.check(&req).unwrap_err();
        assert!(
            err.contains("not an aggregator") || err.contains("message bytes"),
            "{err}"
        );
    }

    #[test]
    fn transfers_merge_pairs() {
        let (plan, _) = simple_plan();
        let t = plan.groups[0].rounds[0].transfers();
        assert_eq!(t.len(), 2);
        assert_eq!(t[&(Rank(0), Rank(0))], 10);
        assert_eq!(t[&(Rank(1), Rank(0))], 10);
    }

    #[test]
    fn aggregator_rounds() {
        let a = AggregatorAssignment {
            rank: Rank(0),
            fd: Extent::new(0, 100),
            buffer: 30,
            data_bytes: 100,
        };
        assert_eq!(a.rounds(), 4);
        let empty = AggregatorAssignment {
            rank: Rank(0),
            fd: Extent::EMPTY,
            buffer: 30,
            data_bytes: 0,
        };
        assert_eq!(empty.rounds(), 0);
    }
}
