//! Collective requests: every rank's flattened offset/length list.
//!
//! The entry point of both planners. A [`RankRequest`] is one rank's
//! sorted, coalesced extent list (what ROMIO computes by flattening the
//! rank's datatype against its file view); a [`CollectiveRequest`] is the
//! whole job's view of one collective read or write call.

use mcio_cluster::Rank;
use mcio_pfs::extent::{coalesce, total_bytes};
use mcio_pfs::{Extent, Rw};
use mcio_simpi::FileView;

/// One rank's access list for a collective call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankRequest {
    /// The requesting rank.
    pub rank: Rank,
    /// Sorted, coalesced, non-overlapping extents.
    pub extents: Vec<Extent>,
}

impl RankRequest {
    /// Build from raw extents (they are sorted and coalesced here).
    pub fn new(rank: Rank, extents: Vec<Extent>) -> Self {
        RankRequest {
            rank,
            extents: coalesce(extents),
        }
    }

    /// Build from a file view: the absolute extents of this rank's first
    /// `nbytes` of data.
    pub fn from_view(rank: Rank, view: &FileView, nbytes: u64) -> Self {
        let extents = view
            .first_segments(nbytes)
            .into_iter()
            .map(|s| Extent::new(s.offset, s.len))
            .collect();
        Self::new(rank, extents)
    }

    /// Bytes this rank requests.
    pub fn bytes(&self) -> u64 {
        total_bytes(&self.extents)
    }

    /// True when the rank requests nothing.
    pub fn is_empty(&self) -> bool {
        self.extents.is_empty()
    }

    /// The rank's span: smallest extent covering everything (empty when
    /// the request is empty).
    pub fn span(&self) -> Extent {
        match (self.extents.first(), self.extents.last()) {
            (Some(first), Some(last)) => Extent::from_bounds(first.offset, last.end()),
            _ => Extent::EMPTY,
        }
    }

    /// Bytes this rank requests inside `window`. `O(log n + k)` in the
    /// extent count `n` and overlap count `k` (the extents are sorted).
    pub fn bytes_in(&self, window: &Extent) -> u64 {
        self.overlapping(window).map(|e| e.len).sum()
    }

    /// The rank's extents clipped to `window`, in offset order.
    pub fn extents_in(&self, window: &Extent) -> Vec<Extent> {
        self.overlapping(window).collect()
    }

    /// Iterator over the clipped intersections with `window`, found by
    /// binary search (the extents are sorted and disjoint).
    fn overlapping<'a>(&'a self, window: &'a Extent) -> impl Iterator<Item = Extent> + 'a {
        // First extent that could overlap: the last one starting at or
        // before `window.offset` may still reach into the window.
        let start = self.extents.partition_point(|e| e.end() <= window.offset);
        self.extents[start..]
            .iter()
            .take_while(|e| e.offset < window.end())
            .filter_map(|e| e.intersect(window))
    }
}

/// A whole job's collective call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CollectiveRequest {
    /// Read or write.
    pub rw: Rw,
    /// Per-rank requests, indexed by rank (every rank present, possibly
    /// empty).
    pub ranks: Vec<RankRequest>,
}

impl CollectiveRequest {
    /// Build from per-rank extent lists (index = rank).
    pub fn new(rw: Rw, per_rank: Vec<Vec<Extent>>) -> Self {
        CollectiveRequest {
            rw,
            ranks: per_rank
                .into_iter()
                .enumerate()
                .map(|(r, ex)| RankRequest::new(Rank(r), ex))
                .collect(),
        }
    }

    /// Build from per-rank file views and byte counts.
    pub fn from_views(rw: Rw, views: &[(FileView, u64)]) -> Self {
        CollectiveRequest {
            rw,
            ranks: views
                .iter()
                .enumerate()
                .map(|(r, (v, n))| RankRequest::from_view(Rank(r), v, *n))
                .collect(),
        }
    }

    /// Number of ranks in the job.
    pub fn nranks(&self) -> usize {
        self.ranks.len()
    }

    /// Total bytes requested across all ranks.
    pub fn total_bytes(&self) -> u64 {
        self.ranks.iter().map(RankRequest::bytes).sum()
    }

    /// The aggregate access region: smallest extent covering every
    /// rank's request (ROMIO's `st_offset .. end_offset`).
    pub fn hull(&self) -> Extent {
        self.ranks
            .iter()
            .map(RankRequest::span)
            .fold(Extent::EMPTY, |acc, s| acc.hull(&s))
    }

    /// All extents of all ranks, coalesced: the exact requested file
    /// region (may have holes, unlike [`CollectiveRequest::hull`]).
    pub fn coverage(&self) -> Vec<Extent> {
        coalesce(
            self.ranks
                .iter()
                .flat_map(|r| r.extents.iter().copied())
                .collect(),
        )
    }

    /// Ranks with data inside `window`.
    pub fn ranks_in(&self, window: &Extent) -> Vec<Rank> {
        self.ranks
            .iter()
            .filter(|r| r.bytes_in(window) > 0)
            .map(|r| r.rank)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcio_simpi::Datatype;

    #[test]
    fn rank_request_coalesces() {
        let r = RankRequest::new(
            Rank(0),
            vec![Extent::new(10, 5), Extent::new(0, 10), Extent::new(30, 5)],
        );
        assert_eq!(r.extents, vec![Extent::new(0, 15), Extent::new(30, 5)]);
        assert_eq!(r.bytes(), 20);
        assert_eq!(r.span(), Extent::new(0, 35));
    }

    #[test]
    fn empty_rank_request() {
        let r = RankRequest::new(Rank(1), vec![]);
        assert!(r.is_empty());
        assert_eq!(r.bytes(), 0);
        assert_eq!(r.span(), Extent::EMPTY);
        assert_eq!(r.bytes_in(&Extent::new(0, 100)), 0);
    }

    #[test]
    fn windowed_queries() {
        let r = RankRequest::new(Rank(0), vec![Extent::new(0, 10), Extent::new(20, 10)]);
        let w = Extent::new(5, 20);
        assert_eq!(r.bytes_in(&w), 10);
        assert_eq!(
            r.extents_in(&w),
            vec![Extent::new(5, 5), Extent::new(20, 5)]
        );
    }

    #[test]
    fn from_view_strided() {
        let ft = Datatype::resized(Datatype::bytes(4), 16);
        let view = FileView::new(8, ft);
        let r = RankRequest::from_view(Rank(2), &view, 12);
        assert_eq!(
            r.extents,
            vec![Extent::new(8, 4), Extent::new(24, 4), Extent::new(40, 4)]
        );
    }

    #[test]
    fn collective_aggregates() {
        let req = CollectiveRequest::new(
            Rw::Write,
            vec![
                vec![Extent::new(0, 10)],
                vec![Extent::new(10, 10)],
                vec![Extent::new(40, 10)],
                vec![],
            ],
        );
        assert_eq!(req.nranks(), 4);
        assert_eq!(req.total_bytes(), 30);
        assert_eq!(req.hull(), Extent::new(0, 50));
        assert_eq!(
            req.coverage(),
            vec![Extent::new(0, 20), Extent::new(40, 10)]
        );
        assert_eq!(req.ranks_in(&Extent::new(5, 10)), vec![Rank(0), Rank(1)]);
    }

    #[test]
    fn empty_collective() {
        let req = CollectiveRequest::new(Rw::Read, vec![vec![], vec![]]);
        assert_eq!(req.total_bytes(), 0);
        assert_eq!(req.hull(), Extent::EMPTY);
        assert!(req.coverage().is_empty());
    }
}
