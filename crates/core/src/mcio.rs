//! The memory-conscious collective I/O planner (§3): the paper's
//! contribution, assembled from its four components.
//!
//! 1. **Aggregation Group Division** ([`crate::group`]) — node-aligned
//!    disjoint subgroups of roughly `Msg_group` bytes.
//! 2. **I/O Workload Partition** ([`crate::ptree`]) — per group, a binary
//!    partition tree bisects the file region until each file domain holds
//!    at most `Msg_ind` requested bytes.
//! 3. **Workload Portion Remerging** + 4. **Aggregators Location**
//!    ([`crate::placement`]) — memory-aware placement with `Mem_min` /
//!    `N_ah` constraints, remerging starved domains into neighbors.
//!
//! Rounds are then built exactly like two-phase rounds, but **per
//! group** ([`SyncMode::PerGroup`]): a slow aggregator stalls only its
//! group, and shuffle traffic never crosses group boundaries.

use crate::config::{CollectiveConfig, Strategy};
use crate::group;
use crate::memory::ProcMemory;
use crate::placement;
use crate::plan::{CollectivePlan, GroupPlan, PlanDiag, Round, SyncMode};
use crate::ptree::PartitionTree;
use crate::request::{CollectiveRequest, RankRequest};
use crate::twophase::build_window;
use mcio_cluster::{ProcessMap, Rank};
use mcio_pfs::extent::{coalesce, subtract};
use mcio_pfs::Extent;

/// Build a memory-conscious plan.
///
/// ```
/// use mcio_core::{mcio, CollectiveConfig, CollectiveRequest, ProcMemory};
/// use mcio_cluster::ProcessMap;
/// use mcio_pfs::{Extent, Rw};
///
/// // Four ranks on two nodes, each writing a 1 KiB chunk.
/// let req = CollectiveRequest::new(
///     Rw::Write,
///     (0..4u64).map(|r| vec![Extent::new(r * 1024, 1024)]).collect(),
/// );
/// let map = ProcessMap::block_ppn(4, 2);
/// let mem = ProcMemory::normal(4, 512, 0.35, 7);
/// let cfg = CollectiveConfig::with_buffer(512)
///     .msg_group(2048)  // one group per node
///     .msg_ind(1024)
///     .mem_min(0);
/// let plan = mcio::plan(&req, &map, &mem, &cfg);
/// assert_eq!(plan.check(&req), Ok(()));
/// assert_eq!(plan.groups.len(), 2);
/// ```
///
/// # Panics
/// Panics if the request's rank count does not match the process map or
/// memory table, or if the configuration is invalid.
pub fn plan(
    req: &CollectiveRequest,
    map: &ProcessMap,
    mem: &ProcMemory,
    cfg: &CollectiveConfig,
) -> CollectivePlan {
    assert_eq!(req.nranks(), map.nranks(), "request/topology rank mismatch");
    assert_eq!(req.nranks(), mem.nranks(), "request/memory rank mismatch");
    cfg.validate().expect("invalid collective configuration");

    let groups = group::divide(req, map, cfg.msg_group);
    let mut group_plans = Vec::with_capacity(groups.len());
    let mut diag = PlanDiag::default();
    // Bytes already owned by earlier groups. Ranks of different groups
    // may request overlapping extents; each shared byte is aggregated
    // and written exactly once, by the first group covering it (the
    // overlap is a duplicate by construction — every writer holds the
    // same data for a given file position).
    let mut claimed: Vec<Extent> = Vec::new();
    for g in &groups {
        let region = subtract(&g.region, &claimed);
        // Requested bytes within an extent, restricted to this group's
        // region (already coalesced, so binary search would work; linear
        // scan is fine at these sizes).
        let bytes_region = region.clone();
        let bytes_in = move |e: &Extent| -> u64 {
            bytes_region
                .iter()
                .filter_map(|x| x.intersect(e))
                .map(|x| x.len)
                .sum()
        };
        let hull = match (region.first(), region.last()) {
            (Some(f), Some(l)) => Extent::from_bounds(f.offset, l.end()),
            _ => Extent::EMPTY,
        };
        let mut tree = PartitionTree::build(hull, cfg.msg_ind, &bytes_in);
        diag.ptree_leaves += tree.leaf_count();
        let (aggregators, pdiag) = placement::place_with_diag(g, &mut tree, req, map, mem, cfg);
        diag.remerges += pdiag.remerges;
        diag.relaxations += pdiag.relaxations;

        // Mask the request down to this group's members — so windows only
        // shuffle the group's own data (regions of different groups may
        // interleave in offset space) — and to this group's unclaimed
        // region, so overlapped bytes flow through exactly one group.
        let masked = mask_request(req, &g.ranks, &claimed);
        claimed = coalesce(claimed.into_iter().chain(region).collect());

        let ntimes = aggregators.iter().map(|a| a.rounds()).max().unwrap_or(0);
        let mut rounds = Vec::with_capacity(ntimes);
        for r in 0..ntimes {
            let mut round = Round::default();
            for a in &aggregators {
                let win_start = a.fd.offset + r as u64 * a.buffer;
                if win_start >= a.fd.end() {
                    continue;
                }
                let window = Extent::from_bounds(win_start, (win_start + a.buffer).min(a.fd.end()));
                build_window(masked.ranks.iter(), masked.rw, a.rank, window, &mut round);
            }
            if !round.is_empty() {
                rounds.push(round);
            }
        }

        group_plans.push(GroupPlan {
            ranks: g.ranks.clone(),
            aggregators,
            rounds,
        });
    }

    // Ranks belonging to no group (nothing requested) still appear in the
    // plan via an empty trailing group so executors know about them.
    let grouped: std::collections::HashSet<Rank> = group_plans
        .iter()
        .flat_map(|g| g.ranks.iter().copied())
        .collect();
    let idle: Vec<Rank> = (0..req.nranks())
        .map(Rank)
        .filter(|r| !grouped.contains(r))
        .collect();
    if !idle.is_empty() {
        group_plans.push(GroupPlan {
            ranks: idle,
            aggregators: Vec::new(),
            rounds: Vec::new(),
        });
    }

    CollectivePlan {
        rw: req.rw,
        strategy: Strategy::MemoryConscious,
        sync: SyncMode::PerGroup,
        groups: group_plans,
        diag,
    }
}

/// The view of `req` restricted to `members` (in member order — which
/// is rank order, since `members` is sorted), with member extents
/// losing the bytes in `claimed` (owned by an earlier group). Only the
/// group's own ranks are materialized: copying all ranks per group is
/// quadratic in the rank count at per-node group sizes, and the window
/// builder never looks beyond the group anyway.
fn mask_request(
    req: &CollectiveRequest,
    members: &[Rank],
    claimed: &[Extent],
) -> CollectiveRequest {
    CollectiveRequest {
        rw: req.rw,
        ranks: members
            .iter()
            .map(|&m| {
                let rr = &req.ranks[m.0];
                if claimed.is_empty() {
                    rr.clone()
                } else {
                    RankRequest {
                        rank: rr.rank,
                        extents: subtract(&rr.extents, claimed),
                    }
                }
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcio_cluster::Placement;
    use mcio_pfs::Rw;

    fn serial_setup(nranks: usize, nnodes: usize, chunk: u64) -> (CollectiveRequest, ProcessMap) {
        let req = CollectiveRequest::new(
            Rw::Write,
            (0..nranks as u64)
                .map(|r| vec![Extent::new(r * chunk, chunk)])
                .collect(),
        );
        (req, ProcessMap::new(nranks, nnodes, Placement::Block))
    }

    #[test]
    fn serial_pattern_full_pipeline() {
        let (req, map) = serial_setup(8, 4, 100);
        let mem = ProcMemory::uniform(8, 1000);
        let cfg = CollectiveConfig::with_buffer(100)
            .msg_ind(200)
            .msg_group(400)
            .mem_min(0);
        let p = plan(&req, &map, &mem, &cfg);
        assert_eq!(p.sync, SyncMode::PerGroup);
        assert_eq!(p.strategy, Strategy::MemoryConscious);
        // 800 bytes / msg_group 400 → 2 groups; each 400 B / msg_ind 200
        // → 2 domains each.
        assert_eq!(p.groups.len(), 2);
        assert_eq!(p.naggs(), 4);
        assert_eq!(p.check(&req), Ok(()));
    }

    #[test]
    fn interleaved_pattern_checks_out() {
        // 4 ranks on 2 nodes, IOR-style interleave: rank r owns 10-byte
        // blocks at (b·4 + r)·10.
        let per_rank: Vec<Vec<Extent>> = (0..4u64)
            .map(|r| {
                (0..5u64)
                    .map(|b| Extent::new((b * 4 + r) * 10, 10))
                    .collect()
            })
            .collect();
        let req = CollectiveRequest::new(Rw::Write, per_rank);
        let map = ProcessMap::new(4, 2, Placement::Block);
        let mem = ProcMemory::uniform(4, 64);
        let cfg = CollectiveConfig::with_buffer(64)
            .msg_ind(100)
            .msg_group(100)
            .mem_min(0);
        let p = plan(&req, &map, &mem, &cfg);
        assert_eq!(p.groups.len(), 2);
        assert_eq!(p.check(&req), Ok(()));
        // Shuffle traffic never crosses groups: every message endpoint
        // pair lives in one group.
        for g in &p.groups {
            for r in &g.rounds {
                for m in &r.messages {
                    assert!(g.ranks.contains(&m.src));
                    assert!(g.ranks.contains(&m.dst));
                }
            }
        }
    }

    #[test]
    fn heterogeneous_memory_places_rich_aggregators() {
        let (req, map) = serial_setup(8, 4, 100);
        // Node 0's ranks are starved; node 1's rank 2 is rich, etc.
        let mem = ProcMemory::from_budgets(vec![1, 1, 900, 50, 900, 50, 900, 50]);
        let cfg = CollectiveConfig::with_buffer(100)
            .msg_ind(400)
            .msg_group(u64::MAX)
            .mem_min(100);
        let p = plan(&req, &map, &mem, &cfg);
        assert_eq!(p.check(&req), Ok(()));
        for a in p.aggregators() {
            assert!(
                mem.budget(a.rank) >= 100,
                "starved rank {:?} chosen",
                a.rank
            );
        }
    }

    #[test]
    fn read_direction() {
        let (mut req, map) = serial_setup(4, 2, 50);
        req.rw = Rw::Read;
        let mem = ProcMemory::uniform(4, 1000);
        let cfg = CollectiveConfig::with_buffer(50)
            .msg_ind(100)
            .msg_group(100)
            .mem_min(0);
        let p = plan(&req, &map, &mem, &cfg);
        assert_eq!(p.check(&req), Ok(()));
        for g in &p.groups {
            let aggs: Vec<Rank> = g.aggregators.iter().map(|a| a.rank).collect();
            for r in &g.rounds {
                for m in &r.messages {
                    assert!(aggs.contains(&m.src), "read messages flow from aggregators");
                }
            }
        }
    }

    #[test]
    fn overlapping_requests_write_each_byte_once() {
        // Rank r writes [r·50, 100): adjacent ranks overlap by half, and
        // the overlap crosses node (hence group) boundaries. Each byte
        // must be aggregated and written by exactly one group.
        let per_rank: Vec<Vec<Extent>> =
            (0..8u64).map(|r| vec![Extent::new(r * 50, 100)]).collect();
        let req = CollectiveRequest::new(Rw::Write, per_rank);
        let map = ProcessMap::new(8, 4, Placement::Block);
        let mem = ProcMemory::uniform(8, 100);
        let cfg = CollectiveConfig::with_buffer(100)
            .msg_ind(100)
            .msg_group(150) // one group per node
            .mem_min(0);
        let p = plan(&req, &map, &mem, &cfg);
        assert!(p.groups.len() > 1, "overlap must span groups");
        assert_eq!(p.check(&req), Ok(()));
    }

    #[test]
    fn empty_request() {
        let req = CollectiveRequest::new(Rw::Write, vec![vec![], vec![]]);
        let map = ProcessMap::new(2, 1, Placement::Block);
        let mem = ProcMemory::uniform(2, 100);
        let p = plan(&req, &map, &mem, &CollectiveConfig::default());
        assert_eq!(p.naggs(), 0);
        assert_eq!(p.check(&req), Ok(()));
        // All ranks appear in the idle group.
        let ranks: usize = p.groups.iter().map(|g| g.ranks.len()).sum();
        assert_eq!(ranks, 2);
    }

    #[test]
    fn idle_ranks_collected() {
        // Rank 3 requests nothing and its node has no data at all.
        let req = CollectiveRequest::new(
            Rw::Write,
            vec![
                vec![Extent::new(0, 10)],
                vec![Extent::new(10, 10)],
                vec![],
                vec![],
            ],
        );
        let map = ProcessMap::new(4, 2, Placement::Block);
        let mem = ProcMemory::uniform(4, 100);
        let cfg = CollectiveConfig::with_buffer(100).mem_min(0);
        let p = plan(&req, &map, &mem, &cfg);
        assert_eq!(p.check(&req), Ok(()));
        let all: usize = p.groups.iter().map(|g| g.ranks.len()).sum();
        assert_eq!(all, 4);
    }

    #[test]
    fn buffers_bound_windows() {
        let (req, map) = serial_setup(4, 2, 1000);
        let mem = ProcMemory::from_budgets(vec![64, 999, 64, 999]);
        let cfg = CollectiveConfig::with_buffer(64)
            .msg_ind(2000)
            .msg_group(2000)
            .mem_min(0);
        let p = plan(&req, &map, &mem, &cfg);
        assert_eq!(p.check(&req), Ok(()));
        // Multiple rounds per group.
        assert!(p.max_rounds() > 1);
    }

    #[test]
    fn group_stats_show_locality_gain() {
        // With per-node groups, shuffle traffic should be mostly
        // intra-node compared to the global baseline.
        let (req, map) = serial_setup(8, 4, 100);
        let mem = ProcMemory::uniform(8, 1000);
        let cfg = CollectiveConfig::with_buffer(1000)
            .msg_ind(200)
            .msg_group(1) // one group per node
            .mem_min(0);
        let p = plan(&req, &map, &mem, &cfg);
        assert_eq!(p.check(&req), Ok(()));
        let s = p.stats(Some(&map));
        assert!(
            s.intra_node_fraction() > 0.99,
            "per-node groups should shuffle on-node, got {}",
            s.intra_node_fraction()
        );
    }
}
