//! Empirical parameter determination (§3 preamble).
//!
//! The paper measures, per platform: the per-aggregator message size
//! `Msg_ind` that saturates one aggregator's path to the file system, the
//! aggregator count `N_ah` per node that saturates the node, and the
//! group message size `Msg_group` at which adding aggregators across the
//! network stops helping ("we empirically determined the number of
//! aggregators N_ah, message size Msg_ind per aggregator and the group
//! message size Msg_group"). This module reproduces those probe
//! measurements on the simulated machine, so configurations derive from
//! the machine model instead of magic numbers.

use mcio_cluster::spec::ClusterSpec;
use mcio_cluster::{Fabric, NodeId};
use mcio_des::Simulation;
use mcio_pfs::{Extent, Pfs, Rw};

/// The tuned knobs for a machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TunedParams {
    /// Saturating per-aggregator message size, bytes.
    pub msg_ind: u64,
    /// Aggregators per node before the node saturates.
    pub nah: usize,
    /// Group message size: enough aggregation work to saturate the PFS.
    pub msg_group: u64,
}

/// Bandwidth (MiB/s) of `naggs` concurrent aggregators on `nodes` nodes
/// each writing one `size`-byte contiguous message at distinct offsets.
fn probe_bandwidth(spec: &ClusterSpec, nodes: usize, naggs: usize, size: u64, rw: Rw) -> f64 {
    let mut sim = Simulation::new();
    let mut spec = spec.clone();
    spec.nodes = nodes.max(1);
    let fabric = Fabric::build(&mut sim, &spec);
    let pfs = Pfs::build(&mut sim, &spec);
    for a in 0..naggs {
        let node = NodeId(a % spec.nodes);
        let extent = Extent::new(a as u64 * size, size);
        pfs.submit(
            &mut sim,
            &fabric,
            &format!("probe{a}"),
            node,
            rw,
            extent,
            &[],
        );
    }
    let report = sim.run().expect("probe DAG is acyclic");
    let elapsed = report.makespan().as_secs_f64();
    if elapsed == 0.0 {
        0.0
    } else {
        (naggs as u64 * size) as f64 / (1024.0 * 1024.0) / elapsed
    }
}

/// Find `Msg_ind`: the smallest power-of-two message size at which a
/// single aggregator reaches at least `threshold` (e.g. 0.9) of its
/// plateau bandwidth.
pub fn tune_msg_ind(spec: &ClusterSpec, rw: Rw, threshold: f64) -> u64 {
    const MIB: u64 = 1 << 20;
    let plateau = probe_bandwidth(spec, 1, 1, 1024 * MIB, rw);
    let mut size = MIB;
    while size < 1024 * MIB {
        if probe_bandwidth(spec, 1, 1, size, rw) >= threshold * plateau {
            return size;
        }
        size *= 2;
    }
    size
}

/// Find `N_ah`: how many concurrent aggregators on one node still help
/// (stop when an extra aggregator improves node throughput by less than
/// `min_gain`, e.g. 0.05).
pub fn tune_nah(spec: &ClusterSpec, msg_ind: u64, rw: Rw, min_gain: f64) -> usize {
    let mut best = probe_bandwidth(spec, 1, 1, msg_ind, rw);
    let mut nah = 1usize;
    while nah < spec.node.cores.max(1) {
        let next = probe_bandwidth(spec, 1, nah + 1, msg_ind, rw);
        if next < best * (1.0 + min_gain) {
            break;
        }
        best = next;
        nah += 1;
    }
    nah
}

/// Find `Msg_group`: grow the number of aggregators (spread over nodes,
/// `N_ah` per node) until system throughput stops improving; the group
/// size is that aggregator count times `Msg_ind`.
pub fn tune_msg_group(spec: &ClusterSpec, msg_ind: u64, nah: usize, rw: Rw, min_gain: f64) -> u64 {
    let mut naggs = 1usize;
    let mut best = probe_bandwidth(spec, 1, 1, msg_ind, rw);
    loop {
        let next_naggs = naggs * 2;
        let nodes = next_naggs.div_ceil(nah.max(1)).min(spec.nodes.max(1));
        let next = probe_bandwidth(spec, nodes, next_naggs, msg_ind, rw);
        if next < best * (1.0 + min_gain) || next_naggs > 4096 {
            break;
        }
        best = next;
        naggs = next_naggs;
    }
    naggs as u64 * msg_ind
}

/// Incrementally re-solve the §3 knobs from live degradation signals
/// instead of re-running the probe sweep mid-collective.
///
/// The controller calls this between rounds with the current
/// [`SignalSnapshot`](crate::adaptive::SignalSnapshot) severity. Two
/// properties make it safe to run in a loop:
///
/// * **Hysteresis** — at or below the policy's dead band the output is
///   exactly `base`, so a mildly-degraded machine never oscillates
///   between plans.
/// * **Monotonicity** — beyond the band, `msg_group` shrinks
///   monotonically (non-increasing) in severity: a sicker machine gets
///   finer-grained rounds, never coarser, and repeated re-tunes at the
///   same severity are idempotent.
///
/// The result stays quantized: `msg_group` is a positive multiple of
/// `msg_ind` (clamped down to `msg_group` itself when one quantum
/// would exceed it), so re-split chunk boundaries remain exact.
pub fn retune_from_signals(
    base: TunedParams,
    signals: &crate::adaptive::SignalSnapshot,
    policy: crate::adaptive::AdaptivePolicy,
) -> TunedParams {
    let band = policy.dead_band();
    let sev = signals.severity();
    if policy.is_off() || sev <= band {
        return base;
    }
    let scale = 1.0 / (1.0 + policy.retune_gain() * (sev - band));
    let quantum = base.msg_ind.min(base.msg_group).max(1);
    let scaled = (base.msg_group as f64 * scale) as u64;
    let msg_group = (scaled / quantum).max(1) * quantum;
    TunedParams {
        msg_ind: base.msg_ind.min(msg_group),
        nah: base.nah,
        msg_group,
    }
}

/// Run the full §3 calibration for a machine.
pub fn tune(spec: &ClusterSpec, rw: Rw) -> TunedParams {
    let msg_ind = tune_msg_ind(spec, rw, 0.9);
    let nah = tune_nah(spec, msg_ind, rw, 0.05);
    let msg_group = tune_msg_group(spec, msg_ind, nah, rw, 0.05);
    TunedParams {
        msg_ind,
        nah,
        msg_group,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MIB: u64 = 1 << 20;

    #[test]
    fn probe_bandwidth_monotone_in_size() {
        let spec = ClusterSpec::small(2, 2);
        let small = probe_bandwidth(&spec, 1, 1, 64 * 1024, Rw::Write);
        let big = probe_bandwidth(&spec, 1, 1, 64 * MIB, Rw::Write);
        assert!(
            big > small,
            "large messages should amortize overhead: {big} vs {small}"
        );
    }

    #[test]
    fn msg_ind_is_reasonable() {
        let spec = ClusterSpec::small(2, 2);
        let msg_ind = tune_msg_ind(&spec, Rw::Write, 0.9);
        // Must be beyond the overhead-dominated region but bounded.
        assert!(msg_ind >= MIB, "msg_ind {msg_ind}");
        assert!(msg_ind <= 1024 * MIB, "msg_ind {msg_ind}");
        // At msg_ind, bandwidth ≥ 90% of plateau by construction.
        let plateau = probe_bandwidth(&spec, 1, 1, 1024 * MIB, Rw::Write);
        let at = probe_bandwidth(&spec, 1, 1, msg_ind, Rw::Write);
        assert!(at >= 0.9 * plateau);
    }

    #[test]
    fn nah_at_least_one_and_bounded() {
        let spec = ClusterSpec::small(2, 4);
        let msg_ind = tune_msg_ind(&spec, Rw::Write, 0.9);
        let nah = tune_nah(&spec, msg_ind, Rw::Write, 0.05);
        assert!(nah >= 1);
        assert!(nah <= spec.node.cores);
    }

    #[test]
    fn msg_group_multiple_of_msg_ind() {
        let spec = ClusterSpec::small(4, 2);
        let msg_ind = 16 * MIB;
        let group = tune_msg_group(&spec, msg_ind, 2, Rw::Write, 0.05);
        assert_eq!(group % msg_ind, 0);
        assert!(group >= msg_ind);
    }

    #[test]
    fn full_tune_consistent() {
        let spec = ClusterSpec::small(4, 2);
        let t = tune(&spec, Rw::Write);
        assert!(t.msg_group >= t.msg_ind);
        assert!(t.nah >= 1);
    }

    #[test]
    fn tune_deterministic_across_repeated_probes() {
        // The probes are pure DES runs — no clocks, no RNG — so the
        // calibration must replay bit-identically, read and write.
        let spec = ClusterSpec::small(4, 2);
        for rw in [Rw::Write, Rw::Read] {
            assert_eq!(tune(&spec, rw), tune(&spec, rw));
            let a = probe_bandwidth(&spec, 2, 3, 8 * MIB, rw);
            let b = probe_bandwidth(&spec, 2, 3, 8 * MIB, rw);
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn msg_ind_monotone_in_overheads() {
        // Scaling the per-message and per-request overheads up forces
        // larger messages to amortize them: the saturating size never
        // shrinks, and grows across the sweep.
        use mcio_des::SimDuration;
        let base = ClusterSpec::small(4, 2);
        let mut prev = 0;
        let mut sizes = Vec::new();
        for mult in [1u64, 4, 16, 64, 256] {
            let mut spec = base.clone();
            spec.ost_request_overhead =
                SimDuration::from_nanos(base.ost_request_overhead.as_nanos() * mult);
            spec.message_overhead =
                SimDuration::from_nanos(base.message_overhead.as_nanos() * mult);
            let msg_ind = tune_msg_ind(&spec, Rw::Write, 0.9);
            assert!(
                msg_ind >= prev,
                "msg_ind shrank under higher overhead: {msg_ind} < {prev} at x{mult}"
            );
            prev = msg_ind;
            sizes.push(msg_ind);
        }
        assert!(
            sizes.last() > sizes.first(),
            "msg_ind never responded to a 256x overhead increase: {sizes:?}"
        );
    }

    #[test]
    fn msg_group_monotone_in_io_servers() {
        // More I/O servers means more aggregators keep helping before
        // the PFS saturates: the group size never shrinks as servers
        // are added, and grows across the sweep.
        let base = ClusterSpec::small(4, 2);
        let mut prev = 0;
        let mut groups = Vec::new();
        for servers in [1usize, 2, 4, 8, 16] {
            let mut spec = base.clone();
            spec.io_servers = servers;
            let group = tune_msg_group(&spec, 16 * MIB, 2, Rw::Write, 0.05);
            assert!(
                group >= prev,
                "msg_group shrank with more servers: {group} < {prev} at {servers}"
            );
            prev = group;
            groups.push(group);
        }
        assert!(
            groups.last() > groups.first(),
            "msg_group never responded to 16x more servers: {groups:?}"
        );
    }

    #[test]
    fn retune_noop_inside_dead_band() {
        use crate::adaptive::{AdaptivePolicy, SignalSnapshot};
        use mcio_faults::FaultSpec;
        let base = TunedParams {
            msg_ind: 16 * MIB,
            nah: 2,
            msg_group: 256 * MIB,
        };
        // 20% time-weighted deficit: inside the conservative band
        // (0.25), outside the aggressive one (0.10).
        let spec = FaultSpec::parse("seed 1\nost_slow(0, 5.0, 0ms..10ms)").unwrap();
        let snap = SignalSnapshot::sample(&spec, 1, 40_000_000, 0.0);
        assert!((snap.severity() - 0.2).abs() < 1e-9, "{}", snap.severity());
        assert_eq!(
            retune_from_signals(base, &snap, AdaptivePolicy::Conservative),
            base,
            "dead band must be an exact no-op"
        );
        assert_eq!(retune_from_signals(base, &snap, AdaptivePolicy::Off), base);
        let tuned = retune_from_signals(base, &snap, AdaptivePolicy::Aggressive);
        assert!(tuned.msg_group < base.msg_group);
        assert_eq!(tuned.msg_group % tuned.msg_ind, 0, "quantized");
    }

    #[test]
    fn retune_monotone_in_severity() {
        use crate::adaptive::{AdaptivePolicy, SignalSnapshot};
        use mcio_faults::FaultSpec;
        let base = TunedParams {
            msg_ind: 4 * MIB,
            nah: 2,
            msg_group: 512 * MIB,
        };
        for policy in [AdaptivePolicy::Conservative, AdaptivePolicy::Aggressive] {
            let mut prev = u64::MAX;
            for tenths in 1..=9u64 {
                // Stall for `tenths`/10 of the horizon: severity rises
                // in exact 0.1 steps.
                let spec =
                    FaultSpec::parse(&format!("seed 1\nost_stall(0, 0ms..{}ms)", tenths * 10))
                        .unwrap();
                let snap = SignalSnapshot::sample(&spec, 1, 100_000_000, 0.0);
                let tuned = retune_from_signals(base, &snap, policy);
                assert!(
                    tuned.msg_group <= prev,
                    "{policy:?}: msg_group grew with severity: {} > {prev}",
                    tuned.msg_group
                );
                assert!(tuned.msg_group >= 1);
                assert_eq!(tuned.msg_group % tuned.msg_ind, 0);
                assert!(tuned.msg_ind <= base.msg_ind);
                assert_eq!(tuned.nah, base.nah);
                // Idempotent at fixed severity.
                assert_eq!(retune_from_signals(base, &snap, policy), tuned);
                prev = tuned.msg_group;
            }
            assert!(
                prev < base.msg_group,
                "{policy:?} never shrank the group size"
            );
        }
    }

    #[test]
    fn table1_machines_tune_to_pinned_params() {
        // Regression pin for the Table-1 machines: these values are a
        // contract of the machine model — if a resource-model change
        // moves them, the paper-facing calibration moved too, and the
        // change needs a deliberate re-pin.
        let ex = tune(&ClusterSpec::exascale_2018(), Rw::Write);
        assert_eq!(
            ex,
            TunedParams {
                msg_ind: 128 * MIB,
                nah: 2,
                msg_group: 512 * 1024 * MIB,
            }
        );
        let peta = tune(&ClusterSpec::petascale_2010(), Rw::Write);
        assert_eq!(
            peta,
            TunedParams {
                msg_ind: 16 * MIB,
                nah: 2,
                msg_group: 32 * 1024 * MIB,
            }
        );
    }
}
