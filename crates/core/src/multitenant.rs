//! Multi-tenant execution: N independent collective jobs sharing one
//! machine.
//!
//! The paper tunes collective I/O on a dedicated testbed, but a real
//! extreme-scale machine runs many collective jobs against one shared
//! parallel file system. This module lowers every job's plan into a
//! *single* discrete-event simulation over one shared [`Fabric`] and
//! [`Pfs`], so cross-job contention on OSTs, NICs and memory buses
//! falls out of the existing resource model instead of being modeled
//! separately:
//!
//! * each job owns a node partition via [`TenantJob::node_offset`]
//!   (partitions may overlap — two jobs can share nodes);
//! * each job arrives at [`TenantJob::start`] (simulated time, no
//!   wall-clock): a release-gated activity holds back its first round;
//! * every activity label is namespaced `j{n}.` so traces, metrics and
//!   `mcio-analyze` can attribute work to a job.
//!
//! A single-job run with offset 0 and start 0 is byte-identical to
//! [`simulate_observed`](crate::exec_sim::simulate_observed) — the
//! prefix collapses to `""` and the lowering is the very same code
//! path (`crates/core/tests/multitenant_props.rs` proves it).
//!
//! Interference metrics per job:
//! * **slowdown** — the job's span on the shared machine divided by
//!   its elapsed time when simulated alone on the same nodes;
//! * **OST busy-overlap** — the fraction of the job's OST service time
//!   during which at least one *other* job was also being served by
//!   some OST (how much of its storage work was contended).

use crate::adaptive::{plan_deferrals, AdaptiveOutcome, AdaptivePolicy, SignalSnapshot};
use crate::config::Strategy;
use crate::exec_sim::{
    attribute_phases, busy_maxima, emit_round_spans, lower_plan, phase_fractions, record_run,
    simulate_inner, trace_faults, trace_replan, Attribution, Exchange, FaultInjection, Observe,
    Pipeline, ReplanMark, RoundWindow, RunMetrics, TimingReport,
};
use crate::plan::CollectivePlan;
use mcio_cluster::spec::ClusterSpec;
use mcio_cluster::{Fabric, ProcessMap};
use mcio_des::{Activity, SharePolicy, SimDuration, SimTime, Simulation};
use mcio_faults::FaultSpec;
use mcio_obs::TraceCollector;
use mcio_pfs::{OstId, Pfs};
use std::collections::HashMap;
use std::sync::Arc;

/// The trace process id of the per-job tenant lanes (pid 1 = resources,
/// 2 = round phases, 3 = faults). Emitted only when a run has two or
/// more jobs, so single-job traces stay byte-identical to solo runs.
pub const PID_TENANTS: u64 = 4;

/// One job of a multi-tenant run: a fully planned collective plus its
/// placement on the shared machine and its arrival time.
#[derive(Debug, Clone)]
pub struct TenantJob {
    /// Job name (trace lanes, metric labels, reports).
    pub label: String,
    /// The planned collective (pure data; any strategy).
    pub plan: CollectivePlan,
    /// The job's process placement over its *local* nodes
    /// `0..map.nnodes()`; shifted onto the shared machine by
    /// [`node_offset`](Self::node_offset) at lowering time.
    pub map: ProcessMap,
    /// First machine node of the job's partition. Partitions are
    /// exclusive when offsets don't overlap and shared when they do.
    pub node_offset: usize,
    /// Arrival time: no round of this job starts earlier.
    pub start: SimDuration,
    /// Round pipelining mode.
    pub pipeline: Pipeline,
    /// Exchange shape.
    pub exchange: Exchange,
}

impl TenantJob {
    /// A job at node offset 0, arriving at time 0, with serial rounds
    /// and a direct exchange.
    pub fn new(label: impl Into<String>, plan: CollectivePlan, map: ProcessMap) -> Self {
        Self {
            label: label.into(),
            plan,
            map,
            node_offset: 0,
            start: SimDuration::ZERO,
            pipeline: Pipeline::Serial,
            exchange: Exchange::Direct,
        }
    }

    /// Place the job's nodes at `offset..offset + map.nnodes()`.
    pub fn node_offset(mut self, offset: usize) -> Self {
        self.node_offset = offset;
        self
    }

    /// Delay the job's first round until `start`.
    pub fn start(mut self, start: SimDuration) -> Self {
        self.start = start;
        self
    }

    /// Set the round pipelining mode.
    pub fn pipeline(mut self, pipeline: Pipeline) -> Self {
        self.pipeline = pipeline;
        self
    }

    /// Set the exchange shape.
    pub fn exchange(mut self, exchange: Exchange) -> Self {
        self.exchange = exchange;
        self
    }
}

/// Outcome of one job of a multi-tenant run.
#[derive(Debug, Clone, PartialEq)]
pub struct JobOutcome {
    /// The job's label, copied from its [`TenantJob`].
    pub label: String,
    /// The strategy its plan used.
    pub strategy: Strategy,
    /// The job's timing view of the shared run. `elapsed` is the job's
    /// *span* — arrival to last round completion — and the busy maxima
    /// are machine-wide (the resources are shared).
    pub report: TimingReport,
    /// Arrival time, nanoseconds.
    pub start_ns: u64,
    /// Completion of the job's last round slot, nanoseconds.
    pub end_ns: u64,
    /// Elapsed time of the same job simulated alone on the same nodes.
    pub solo_elapsed: SimDuration,
    /// `span / solo_elapsed` — 1.0 means no interference cost.
    pub slowdown: f64,
    /// Fraction of this job's OST service time overlapping some other
    /// job's OST service time, in `[0, 1]`. Zero for a single job.
    pub ost_overlap: f64,
    /// What the closed-loop controller did for this job (all-zero under
    /// [`AdaptivePolicy::Off`]).
    pub adaptive: AdaptiveOutcome,
}

/// Result of [`run_multitenant`]: per-job outcomes in job order plus
/// the shared-machine makespan.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiTenantReport {
    /// One outcome per job, in the order the jobs were given.
    pub jobs: Vec<JobOutcome>,
    /// Completion of the last activity of any job.
    pub makespan: SimDuration,
    /// Unified Chrome-trace JSON when requested: resource lanes
    /// (pid 1), per-job round phases (pid 2, lanes prefixed `j{n}.`),
    /// fault lanes (pid 3) and per-job window lanes ([`PID_TENANTS`]).
    pub trace: Option<String>,
    /// Deterministic engine counters of the one shared DES run (the
    /// `mcio.prof.v1` cell a multi-tenant run contributes).
    pub engine: mcio_des::EngineProfile,
}

/// Per-job bookkeeping of the shared lowering.
struct JobLowered {
    meta: Vec<crate::exec_sim::SlotMeta>,
    groups: Vec<Option<usize>>,
    /// Activity-id range `[act_lo, act_hi)` this job created (its start
    /// gate, messages, PFS requests and joins) — the ownership key for
    /// attributing service records to jobs.
    act_lo: usize,
    act_hi: usize,
}

/// Run `jobs` concurrently on one shared machine.
///
/// All jobs are lowered into a single DES over one `Fabric` and one
/// `Pfs`; contention on shared OSTs, NICs and memory buses emerges
/// from the FIFO resource model. `faults` is a machine-level fault
/// plan (OST slowdowns/stalls, transient request failures) applied to
/// the shared PFS — every job sees it, exactly like a real storage
/// degradation. Structural per-job faults (aggregator crash, memory
/// shock) go through [`simulate_faulted`](crate::simulate_faulted)
/// instead, which re-plans a single job.
///
/// # Panics
/// Panics if `jobs` is empty or any job's partition
/// (`node_offset + map.nnodes()`) exceeds the machine's node count.
pub fn run_multitenant(
    jobs: &[TenantJob],
    spec: &ClusterSpec,
    faults: Option<&FaultSpec>,
    obs: Observe<'_>,
) -> MultiTenantReport {
    run_multitenant_adaptive(jobs, spec, faults, AdaptivePolicy::Off, obs)
}

/// Probe pass of the closed-loop multi-tenant controller: lower every
/// job into a shared DES exactly as the static runner would — faults
/// armed, no gates, no trace — run it, and return each job's absolute
/// round windows. Feeding the deferral planner *shared* windows rather
/// than solo-probe windows is what makes it contention-aware: on a
/// busy machine a round starts far later than its solo probe predicts,
/// and a gate computed from solo times would release before the round
/// was ever going to run.
fn probe_shared_windows(
    jobs: &[TenantJob],
    spec: &ClusterSpec,
    faults: &FaultSpec,
    engine: SharePolicy,
) -> Vec<Vec<RoundWindow>> {
    let mut sim = Simulation::with_policy(engine);
    let fabric = Fabric::build(&mut sim, spec);
    let mut pfs = Pfs::build(&mut sim, spec);
    pfs.apply_faults(&mut sim, faults);
    let no_gates: HashMap<(Option<usize>, usize), mcio_des::ActivityId> = HashMap::new();
    let mut lowered: Vec<(Vec<crate::exec_sim::SlotMeta>, Vec<Option<usize>>)> =
        Vec::with_capacity(jobs.len());
    for (ji, job) in jobs.iter().enumerate() {
        let tmap = job.map.with_node_offset(job.node_offset);
        let prefix = format!("j{ji}.");
        let start_gate = if job.start.is_zero() {
            None
        } else {
            Some(sim.add_activity(
                Activity::new(format!("{prefix}start")).release_at(SimTime::ZERO + job.start),
            ))
        };
        lowered.push(lower_plan(
            &mut sim,
            &fabric,
            &pfs,
            &job.plan,
            &tmap,
            job.pipeline,
            job.exchange,
            &no_gates,
            start_gate,
            &prefix,
        ));
    }
    let report = sim.run().expect("multi-tenant DAG is acyclic");
    jobs.iter()
        .zip(&lowered)
        .map(|(job, (meta, groups))| attribute_phases(job.plan.rw, &report, meta, groups).windows)
        .collect()
}

/// [`run_multitenant`] with the closed-loop controller enabled for the
/// MC-CIO jobs of the run. On a shared machine the controller's lever
/// is *deferral*: a probe of the whole shared, degraded run
/// ([`probe_shared_windows`]) decides which of each MC job's rounds
/// should wait out a degraded OST window instead of crawling through
/// it, and those rounds are release-gated in the shared DES. The
/// job's solo clean run supplies the nominal round durations the
/// defer-vs-crawl comparison needs. Structural re-planning (crash
/// failover, shock demotion) stays a per-job concern via
/// [`simulate_adaptive`](crate::simulate_adaptive) — exactly as
/// structural faults already do for [`run_multitenant`]. Two-phase
/// jobs and [`AdaptivePolicy::Off`] take the static path
/// byte-for-byte.
pub fn run_multitenant_adaptive(
    jobs: &[TenantJob],
    spec: &ClusterSpec,
    faults: Option<&FaultSpec>,
    policy: AdaptivePolicy,
    obs: Observe<'_>,
) -> MultiTenantReport {
    assert!(
        !jobs.is_empty(),
        "a multi-tenant run needs at least one job"
    );
    let multi = jobs.len() > 1;
    let controller_ran = |strategy: Strategy| {
        !policy.is_off() && faults.is_some_and(|f| !f.is_empty()) && strategy != Strategy::TwoPhase
    };

    let build_scope = obs.prof.map(|p| p.scope("build-activity-graph"));
    let mut sim = Simulation::with_policy(obs.engine);
    // The OST-overlap metric needs service records, so multi-job runs
    // always trace the DES (the Chrome JSON is still only rendered on
    // request). Single-job runs keep the solo code path bit-for-bit.
    if obs.trace || multi {
        sim.enable_trace();
    }
    let fabric = Fabric::build(&mut sim, spec);
    let mut pfs = Pfs::build(&mut sim, spec);
    if let Some(reg) = obs.registry {
        pfs.set_registry(Arc::clone(reg));
    }
    if let Some(fspec) = faults {
        pfs.apply_faults(&mut sim, fspec);
    }

    // Closed-loop probe: when any job's controller will act, run the
    // whole shared, degraded machine once without gates to learn where
    // every round actually lands under contention.
    let shared_probe: Vec<Vec<RoundWindow>> =
        if jobs.iter().any(|j| controller_ran(j.plan.strategy)) {
            probe_shared_windows(
                jobs,
                spec,
                faults.expect("controller_ran implies faults"),
                obs.engine,
            )
        } else {
            Vec::new()
        };

    // Lower every job behind its arrival gate, remembering which
    // activity-id range it created.
    let mut lowered: Vec<JobLowered> = Vec::with_capacity(jobs.len());
    let mut shifted_maps: Vec<ProcessMap> = Vec::with_capacity(jobs.len());
    let mut job_adaptive: Vec<AdaptiveOutcome> = Vec::with_capacity(jobs.len());
    let mut all_replans: Vec<ReplanMark> = Vec::new();
    for (ji, job) in jobs.iter().enumerate() {
        let tmap = job.map.with_node_offset(job.node_offset);
        assert!(
            tmap.nnodes() <= fabric.nnodes(),
            "job {} needs nodes {}..{} but the machine has {}",
            job.label,
            job.node_offset,
            tmap.nnodes(),
            fabric.nnodes()
        );
        let prefix = if multi {
            format!("j{ji}.")
        } else {
            String::new()
        };
        let act_lo = sim.activity_count();
        let start_gate = if job.start.is_zero() {
            None
        } else {
            Some(sim.add_activity(
                Activity::new(format!("{prefix}start")).release_at(SimTime::ZERO + job.start),
            ))
        };
        // Closed-loop deferral: the shared probe says where this job's
        // rounds land on the live, degraded, contended machine; the
        // solo clean run says how long each round takes at nominal
        // rate. Rounds the comparison condemns to crawling through a
        // degraded OST window are held behind a release gate in the
        // shared DES. The probe ignores the gates it motivates — a
        // mistimed gate only costs idle time, never correctness.
        let mut gate_acts: HashMap<(Option<usize>, usize), mcio_des::ActivityId> = HashMap::new();
        let mut adapt = AdaptiveOutcome {
            policy,
            ..AdaptiveOutcome::default()
        };
        if controller_ran(job.plan.strategy) {
            let fspec = faults.expect("controller_ran implies faults");
            let clean = simulate_inner(
                &job.plan,
                &tmap,
                spec,
                job.pipeline,
                job.exchange,
                Observe {
                    engine: obs.engine,
                    ..Observe::default()
                },
                None,
            );
            let horizon = clean.report.elapsed.as_nanos();
            let signals = SignalSnapshot::sample(fspec, spec.io_servers, horizon, 0.0);
            adapt.severity = signals.severity();
            if adapt.severity > policy.dead_band() {
                // The shared-probe windows are already absolute (the
                // job's arrival gate is inside the probe), so no
                // offset; tenancy queueing is factored out of the
                // defer-vs-crawl comparison by the contention scale.
                let scale = crate::adaptive::contention_stretch(
                    fspec,
                    spec.io_servers,
                    &clean.windows,
                    &shared_probe[ji],
                    0,
                );
                for d in plan_deferrals(
                    fspec,
                    policy,
                    spec.io_servers,
                    &clean.windows,
                    &shared_probe[ji],
                    0,
                    scale,
                ) {
                    let gname = d.group.map_or_else(|| "all".into(), |g| g.to_string());
                    let label = format!("{prefix}defer.g{gname}.r{}", d.round);
                    let act = sim.add_activity(
                        Activity::new(label.clone()).release_at(SimTime::from_nanos(d.release_ns)),
                    );
                    gate_acts.insert((d.group, d.round), act);
                    adapt.deferrals += 1;
                    all_replans.push(ReplanMark {
                        name: label,
                        cat: "defer",
                        start_ns: d.from_ns,
                        dur_ns: d.release_ns.saturating_sub(d.from_ns).max(1),
                        slot: None,
                        args: vec![
                            ("job".into(), job.label.clone()),
                            ("stretch".into(), format!("{:.6}", d.stretch)),
                        ],
                    });
                }
            }
        }
        let (meta, groups) = lower_plan(
            &mut sim,
            &fabric,
            &pfs,
            &job.plan,
            &tmap,
            job.pipeline,
            job.exchange,
            &gate_acts,
            start_gate,
            &prefix,
        );
        job_adaptive.push(adapt);
        lowered.push(JobLowered {
            meta,
            groups,
            act_lo,
            act_hi: sim.activity_count(),
        });
        shifted_maps.push(tmap);
    }

    drop(build_scope);
    let run_scope = obs.prof.map(|p| p.scope("des-run"));
    let report = sim.run().expect("multi-tenant DAG is acyclic");
    drop(run_scope);
    let retry_marks = pfs.take_retry_marks();
    let makespan = report.makespan().saturating_since(SimTime::ZERO);
    let (membus_busy_max, nic_busy_max, ost_busy_max, ost_busy_total) =
        busy_maxima(&report, &fabric, &pfs);

    // Per-job OST service intervals (for the busy-overlap metric):
    // every service record on an OST resource belongs to exactly one
    // job, found by its activity-id range.
    let mut per_job_ost: Vec<Vec<(u64, u64)>> = vec![Vec::new(); jobs.len()];
    if multi {
        let ost_ids: std::collections::HashSet<_> = (0..pfs.ost_count())
            .map(|o| pfs.ost_resource(OstId(o)))
            .collect();
        for rec in report.trace().unwrap_or(&[]) {
            if !ost_ids.contains(&rec.resource) {
                continue;
            }
            let idx = rec.activity.index();
            if let Some(ji) = lowered
                .iter()
                .position(|l| idx >= l.act_lo && idx < l.act_hi)
            {
                let start = rec.start.saturating_since(SimTime::ZERO).as_nanos();
                let end = rec.end.saturating_since(SimTime::ZERO).as_nanos();
                if end > start {
                    per_job_ost[ji].push((start, end));
                }
            }
        }
    }
    let merged_ost: Vec<Vec<(u64, u64)>> = per_job_ost.into_iter().map(merge_intervals).collect();

    // Per-job attribution, solo baseline and outcome.
    let mut attributions: Vec<Attribution> = Vec::with_capacity(jobs.len());
    let mut outcomes: Vec<JobOutcome> = Vec::with_capacity(jobs.len());
    for (ji, (job, l)) in jobs.iter().zip(&lowered).enumerate() {
        let att = attribute_phases(job.plan.rw, &report, &l.meta, &l.groups);
        let start_ns = job.start.as_nanos();
        let end_ns = att
            .windows
            .iter()
            .map(|w| w.end_ns)
            .max()
            .unwrap_or(start_ns)
            .max(start_ns);
        let span = SimDuration::from_nanos(end_ns - start_ns);
        let bytes: u64 = job.plan.groups.iter().map(|g| g.io_bytes()).sum();
        let bandwidth_mibs = if span.is_zero() {
            0.0
        } else {
            bytes as f64 / (1024.0 * 1024.0) / span.as_secs_f64()
        };
        let (exchange_fraction, io_fraction) = phase_fractions(att.exchange_time, att.io_time);
        let metrics = RunMetrics {
            exchange_fraction,
            io_fraction,
            rounds: att.rounds.clone(),
            agg_io: att.agg_io.clone(),
        };
        let timing = TimingReport {
            elapsed: span,
            exchange_time: att.exchange_time,
            io_time: att.io_time,
            bytes,
            bandwidth_mibs,
            membus_busy_max,
            nic_busy_max,
            ost_busy_max,
            ost_busy_total,
            activities: l.act_hi - l.act_lo,
            engine: report.engine_profile(),
            metrics,
        };
        // Solo baseline: the same job, alone, on the same nodes of the
        // same machine (fault-free — the baseline isolates *tenancy*).
        let solo_elapsed = simulate_inner(
            &job.plan,
            &shifted_maps[ji],
            spec,
            job.pipeline,
            job.exchange,
            Observe {
                engine: obs.engine,
                ..Observe::default()
            },
            None,
        )
        .report
        .elapsed;
        let slowdown = if solo_elapsed.is_zero() {
            1.0
        } else {
            span.as_secs_f64() / solo_elapsed.as_secs_f64()
        };
        let others: Vec<(u64, u64)> = merge_intervals(
            merged_ost
                .iter()
                .enumerate()
                .filter(|(oj, _)| *oj != ji)
                .flat_map(|(_, v)| v.iter().copied())
                .collect(),
        );
        let own = total_len(&merged_ost[ji]);
        let ost_overlap = if own == 0 {
            0.0
        } else {
            intersect_len(&merged_ost[ji], &others) as f64 / own as f64
        };
        attributions.push(att);
        outcomes.push(JobOutcome {
            label: job.label.clone(),
            strategy: job.plan.strategy,
            report: timing,
            start_ns,
            end_ns,
            solo_elapsed,
            slowdown,
            ost_overlap,
            adaptive: job_adaptive[ji].clone(),
        });
    }

    if let Some(reg) = obs.registry {
        report.record_into(reg);
        pfs.record_imbalance();
        for (job, outcome) in jobs.iter().zip(&outcomes) {
            job.plan.record_into(reg);
            record_run(
                reg,
                job.plan.strategy.label(),
                if multi { Some(&job.label) } else { None },
                outcome.report.elapsed,
                outcome.report.bytes,
                outcome.report.bandwidth_mibs,
                &outcome.report.metrics,
            );
        }
        reg.describe("tenant.jobs", "count", "Concurrent jobs in the run");
        reg.describe("tenant.makespan_ns", "ns", "Shared-machine makespan");
        reg.describe(
            "tenant.slowdown",
            "ratio",
            "Per-job span over solo elapsed (interference cost)",
        );
        reg.describe(
            "tenant.ost_overlap_frac",
            "ratio",
            "Per-job fraction of OST service time overlapping other tenants",
        );
        reg.describe(
            "tenant.solo_elapsed_ns",
            "ns",
            "Per-job elapsed when simulated alone on the same nodes",
        );
        let none: [(&str, &str); 0] = [];
        reg.set_gauge("tenant.jobs", &none, jobs.len() as f64);
        reg.set_gauge("tenant.makespan_ns", &none, makespan.as_nanos() as f64);
        for outcome in &outcomes {
            let labels = [
                ("job", outcome.label.as_str()),
                ("strategy", outcome.strategy.label()),
            ];
            reg.set_gauge("tenant.slowdown", &labels, outcome.slowdown);
            reg.set_gauge("tenant.ost_overlap_frac", &labels, outcome.ost_overlap);
            reg.set_gauge(
                "tenant.solo_elapsed_ns",
                &labels,
                outcome.solo_elapsed.as_nanos() as f64,
            );
        }
        // adaptive.* appears only for jobs the controller actually
        // handled, so Off (and all-static) runs keep their documents
        // byte-identical.
        let mut described = false;
        for outcome in outcomes.iter().filter(|o| controller_ran(o.strategy)) {
            if !described {
                reg.describe(
                    "adaptive.severity",
                    "fraction",
                    "Sampled degradation severity the controller saw",
                );
                reg.describe(
                    "adaptive.deferrals",
                    "count",
                    "Rounds deferred past a degraded OST window",
                );
                described = true;
            }
            let labels = [
                ("job", outcome.label.as_str()),
                ("strategy", outcome.strategy.label()),
                ("policy", policy.label()),
            ];
            reg.set_gauge("adaptive.severity", &labels, outcome.adaptive.severity);
            reg.inc(
                "adaptive.deferrals",
                &labels,
                outcome.adaptive.deferrals as u64,
            );
        }
    }

    let trace = if obs.trace {
        let _emit_scope = obs.prof.map(|p| p.scope("trace-emit"));
        let tc = TraceCollector::new();
        report.trace_into(&tc, 1);
        tc.name_process(2, "plan.rounds");
        let mut tid_base = 0u64;
        for (ji, (job, l)) in jobs.iter().zip(&lowered).enumerate() {
            let lane_prefix = if multi {
                format!("j{ji}.")
            } else {
                String::new()
            };
            emit_round_spans(
                &tc,
                &report,
                job.plan.rw,
                &l.meta,
                &l.groups,
                &attributions[ji].rounds,
                tid_base,
                &lane_prefix,
            );
            tid_base += l.groups.len() as u64;
        }
        if faults.is_some_and(|s| !s.is_empty()) || !retry_marks.is_empty() {
            let inj = FaultInjection {
                spec: faults,
                ..FaultInjection::default()
            };
            trace_faults(&tc, &inj, &report, &[], &retry_marks, makespan.as_nanos());
        }
        if !all_replans.is_empty() {
            trace_replan(&tc, &all_replans, &[], makespan.as_nanos());
        }
        if multi {
            tc.name_process(PID_TENANTS, "tenants");
            for (ji, outcome) in outcomes.iter().enumerate() {
                tc.name_thread(PID_TENANTS, ji as u64, &format!("j{ji} {}", outcome.label));
                let slowdown = format!("{:.6}", outcome.slowdown);
                let overlap = format!("{:.6}", outcome.ost_overlap);
                tc.span_with_args(
                    &format!("j{ji}.window"),
                    "tenant",
                    PID_TENANTS,
                    ji as u64,
                    outcome.start_ns,
                    outcome.end_ns - outcome.start_ns,
                    &[
                        ("job", outcome.label.as_str()),
                        ("strategy", outcome.strategy.label()),
                        ("slowdown", slowdown.as_str()),
                        ("ost_overlap", overlap.as_str()),
                    ],
                );
            }
        }
        Some(tc.chrome_trace_json())
    } else {
        None
    };

    MultiTenantReport {
        jobs: outcomes,
        makespan,
        trace,
        engine: report.engine_profile(),
    }
}

/// Merge possibly-overlapping intervals into a sorted disjoint set.
fn merge_intervals(mut v: Vec<(u64, u64)>) -> Vec<(u64, u64)> {
    v.sort_unstable();
    let mut out: Vec<(u64, u64)> = Vec::with_capacity(v.len());
    for (s, e) in v {
        match out.last_mut() {
            Some(last) if s <= last.1 => last.1 = last.1.max(e),
            _ => out.push((s, e)),
        }
    }
    out
}

/// Total length of a disjoint, sorted interval set.
fn total_len(v: &[(u64, u64)]) -> u64 {
    v.iter().map(|(s, e)| e - s).sum()
}

/// Length of the intersection of two disjoint, sorted interval sets.
fn intersect_len(a: &[(u64, u64)], b: &[(u64, u64)]) -> u64 {
    let (mut i, mut j, mut acc) = (0usize, 0usize, 0u64);
    while i < a.len() && j < b.len() {
        let lo = a[i].0.max(b[j].0);
        let hi = a[i].1.min(b[j].1);
        if hi > lo {
            acc += hi - lo;
        }
        if a[i].1 <= b[j].1 {
            i += 1;
        } else {
            j += 1;
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_helpers() {
        let merged = merge_intervals(vec![(5, 9), (0, 3), (2, 4), (9, 12)]);
        assert_eq!(merged, vec![(0, 4), (5, 12)]);
        assert_eq!(total_len(&merged), 11);
        assert_eq!(intersect_len(&[(0, 10)], &[(5, 15)]), 5);
        assert_eq!(intersect_len(&[(0, 2), (4, 6)], &[(1, 5)]), 2);
        assert_eq!(intersect_len(&[(0, 2)], &[(2, 4)]), 0);
        assert_eq!(intersect_len(&[], &[(0, 4)]), 0);
    }
}
