//! The functional reference executor: runs a plan against real bytes,
//! single-threaded.
//!
//! This is the semantic ground truth for both strategies. Data values are
//! generated from a position-determined oracle (each requesting rank
//! "owns" the bytes of its extents), messages physically copy slices,
//! aggregation buffers are materialized per round (checking they fit the
//! declared buffer), and I/O ops move bytes to/from a
//! [`SparseFile`]. Any byte the plan fails to route — a gap in an
//! aggregator's window, data delivered to the wrong rank — surfaces as a
//! hard error or a verification mismatch.

use crate::plan::{CollectivePlan, Round};
use crate::request::CollectiveRequest;
use mcio_pfs::file::pattern_byte;
use mcio_pfs::{Extent, Rw, SparseFile};

/// Outcome accounting of a functional execution.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FunctionalReport {
    /// Bytes physically copied rank→aggregator or aggregator→rank.
    pub bytes_shuffled: u64,
    /// Bytes moved to/from the file.
    pub bytes_io: u64,
    /// Largest per-round aggregation buffer actually materialized.
    pub peak_agg_buffer: u64,
    /// Rounds executed across all groups.
    pub rounds_executed: usize,
}

/// The deterministic data a rank holds for file extent `e`: the byte at
/// absolute file position `p` is [`pattern_byte`]`(p)`.
pub fn oracle_data(e: &Extent) -> Vec<u8> {
    (e.offset..e.end()).map(pattern_byte).collect()
}

/// Execute a **write** plan: route every rank's data through the
/// aggregators into `file`.
///
/// Returns an error if the plan routes data inconsistently (gaps in an
/// aggregator's window coverage, buffer overflows, direction mixups).
pub fn execute_write(
    plan: &CollectivePlan,
    file: &mut SparseFile,
) -> Result<FunctionalReport, String> {
    if plan.rw != Rw::Write {
        return Err("execute_write called on a read plan".into());
    }
    let mut report = FunctionalReport::default();
    for (gi, g) in plan.groups.iter().enumerate() {
        for (ri, round) in g.rounds.iter().enumerate() {
            report.rounds_executed += 1;
            for io in &round.ios {
                // Materialize the aggregator's window buffer from the
                // messages addressed to it.
                let w = io.window;
                let mut buf = vec![0u8; w.len as usize];
                let mut covered = vec![false; w.len as usize];
                for m in round.messages.iter().filter(|m| m.dst == io.agg) {
                    for e in &m.extents {
                        if !w.contains_extent(e) {
                            continue; // belongs to another window of this agg
                        }
                        let data = oracle_data(e);
                        let at = (e.offset - w.offset) as usize;
                        buf[at..at + data.len()].copy_from_slice(&data);
                        for c in &mut covered[at..at + data.len()] {
                            *c = true;
                        }
                        report.bytes_shuffled += e.len;
                    }
                }
                let filled = covered.iter().filter(|&&c| c).count() as u64;
                report.peak_agg_buffer = report.peak_agg_buffer.max(filled);
                // Write out each coalesced extent; every byte must have
                // been delivered by some message.
                for e in &io.extents {
                    if !w.contains_extent(e) {
                        return Err(format!(
                            "group {gi} round {ri}: io extent {e} outside window {w}"
                        ));
                    }
                    let at = (e.offset - w.offset) as usize;
                    let end = at + e.len as usize;
                    if let Some(hole) = covered[at..end].iter().position(|&c| !c) {
                        return Err(format!(
                            "group {gi} round {ri} agg {}: byte {} of extent {e} never arrived",
                            io.agg,
                            e.offset + hole as u64
                        ));
                    }
                    file.write_at(e.offset, &buf[at..end]);
                    report.bytes_io += e.len;
                }
            }
        }
    }
    Ok(report)
}

/// Per-rank received pieces of a read: `(extent, data)` pairs.
pub type ReceivedPieces = Vec<Vec<(Extent, Vec<u8>)>>;

/// Execute a **read** plan: aggregators read their windows from `file`
/// and distribute slices to the requesting ranks. Returns each rank's
/// received pieces (extent + data) along with the report.
pub fn execute_read(
    plan: &CollectivePlan,
    file: &SparseFile,
) -> Result<(ReceivedPieces, FunctionalReport), String> {
    if plan.rw != Rw::Read {
        return Err("execute_read called on a write plan".into());
    }
    let nranks = plan
        .groups
        .iter()
        .flat_map(|g| g.ranks.iter())
        .map(|r| r.0 + 1)
        .max()
        .unwrap_or(0);
    let mut received: ReceivedPieces = vec![Vec::new(); nranks];
    let mut report = FunctionalReport::default();
    for (gi, g) in plan.groups.iter().enumerate() {
        for (ri, round) in g.rounds.iter().enumerate() {
            report.rounds_executed += 1;
            for io in &round.ios {
                let w = io.window;
                let mut buf = vec![0u8; w.len as usize];
                let mut covered = vec![false; w.len as usize];
                for e in &io.extents {
                    if !w.contains_extent(e) {
                        return Err(format!(
                            "group {gi} round {ri}: io extent {e} outside window {w}"
                        ));
                    }
                    let at = (e.offset - w.offset) as usize;
                    let end = at + e.len as usize;
                    file.read_at(e.offset, &mut buf[at..end]);
                    for c in &mut covered[at..end] {
                        *c = true;
                    }
                    report.bytes_io += e.len;
                }
                let filled = covered.iter().filter(|&&c| c).count() as u64;
                report.peak_agg_buffer = report.peak_agg_buffer.max(filled);
                for m in round.messages.iter().filter(|m| m.src == io.agg) {
                    for e in &m.extents {
                        if !w.contains_extent(e) {
                            continue;
                        }
                        let at = (e.offset - w.offset) as usize;
                        let end = at + e.len as usize;
                        if let Some(hole) = covered[at..end].iter().position(|&c| !c) {
                            return Err(format!(
                                "group {gi} round {ri} agg {}: sending unread byte {} to {}",
                                io.agg,
                                e.offset + hole as u64,
                                m.dst
                            ));
                        }
                        received[m.dst.0].push((*e, buf[at..end].to_vec()));
                        report.bytes_shuffled += e.len;
                    }
                }
            }
        }
    }
    Ok((received, report))
}

/// Verify a written file against the oracle: every requested byte holds
/// [`pattern_byte`] of its position.
pub fn verify_write(req: &CollectiveRequest, file: &SparseFile) -> Result<(), String> {
    for e in req.coverage() {
        let got = file.read_vec(e.offset, e.len as usize);
        for (i, &b) in got.iter().enumerate() {
            let pos = e.offset + i as u64;
            if b != pattern_byte(pos) {
                return Err(format!(
                    "file byte {pos} is {b}, expected {}",
                    pattern_byte(pos)
                ));
            }
        }
    }
    Ok(())
}

/// Verify a read execution: every rank received exactly its requested
/// extents, with the file's bytes.
pub fn verify_read(
    req: &CollectiveRequest,
    file: &SparseFile,
    received: &[Vec<(Extent, Vec<u8>)>],
) -> Result<(), String> {
    for rr in &req.ranks {
        let rank = rr.rank;
        let pieces = received.get(rank.0).map(Vec::as_slice).unwrap_or(&[]);
        // Content check.
        for (e, data) in pieces {
            let expect = file.read_vec(e.offset, e.len as usize);
            if *data != expect {
                return Err(format!("{rank}: wrong data for extent {e}"));
            }
        }
        // Coverage check: pieces tile exactly the rank's request.
        let got = mcio_pfs::extent::coalesce(pieces.iter().map(|(e, _)| *e).collect());
        if got != rr.extents {
            return Err(format!(
                "{rank}: received coverage {got:?} != requested {:?}",
                rr.extents
            ));
        }
        // No duplicate delivery.
        let total: u64 = pieces.iter().map(|(e, _)| e.len).sum();
        if total != rr.bytes() {
            return Err(format!(
                "{rank}: received {total} bytes for a {}-byte request",
                rr.bytes()
            ));
        }
    }
    Ok(())
}

/// Round-trip helper used across the test suite: plan + execute + verify
/// a write, then a read of the same request, with both strategies'
/// plans. Returns the write report.
pub fn roundtrip(
    write_plan: &CollectivePlan,
    read_plan: &CollectivePlan,
    req_write: &CollectiveRequest,
    req_read: &CollectiveRequest,
) -> Result<(FunctionalReport, FunctionalReport), String> {
    let mut file = SparseFile::new();
    let wrep = execute_write(write_plan, &mut file)?;
    verify_write(req_write, &file)?;
    let (received, rrep) = execute_read(read_plan, &file)?;
    verify_read(req_read, &file, &received)?;
    Ok((wrep, rrep))
}

/// Count the rounds a round list would actually execute (non-empty).
pub fn active_rounds(rounds: &[Round]) -> usize {
    rounds.iter().filter(|r| !r.is_empty()).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CollectiveConfig;
    use crate::memory::ProcMemory;
    use crate::{mcio, twophase};
    use mcio_cluster::{Placement, ProcessMap};

    fn serial_req(rw: Rw, nranks: usize, chunk: u64) -> CollectiveRequest {
        CollectiveRequest::new(
            rw,
            (0..nranks as u64)
                .map(|r| vec![Extent::new(r * chunk, chunk)])
                .collect(),
        )
    }

    fn interleaved_req(rw: Rw, nranks: u64, blocks: u64, bs: u64) -> CollectiveRequest {
        CollectiveRequest::new(
            rw,
            (0..nranks)
                .map(|r| {
                    (0..blocks)
                        .map(|b| Extent::new((b * nranks + r) * bs, bs))
                        .collect()
                })
                .collect(),
        )
    }

    #[test]
    fn twophase_write_read_roundtrip_serial() {
        let wreq = serial_req(Rw::Write, 6, 97);
        let rreq = serial_req(Rw::Read, 6, 97);
        let map = ProcessMap::new(6, 3, Placement::Block);
        let mem = ProcMemory::uniform(6, 64);
        let cfg = CollectiveConfig::with_buffer(64);
        let wp = twophase::plan(&wreq, &map, &mem, &cfg);
        let rp = twophase::plan(&rreq, &map, &mem, &cfg);
        let (wrep, rrep) = roundtrip(&wp, &rp, &wreq, &rreq).unwrap();
        assert_eq!(wrep.bytes_io, 6 * 97);
        assert_eq!(rrep.bytes_shuffled, 6 * 97);
        assert!(wrep.peak_agg_buffer <= 64);
    }

    #[test]
    fn mcio_write_read_roundtrip_serial() {
        let wreq = serial_req(Rw::Write, 6, 97);
        let rreq = serial_req(Rw::Read, 6, 97);
        let map = ProcessMap::new(6, 3, Placement::Block);
        let mem = ProcMemory::normal(6, 64, 0.5, 11);
        let cfg = CollectiveConfig::with_buffer(64)
            .msg_ind(128)
            .msg_group(200)
            .mem_min(0);
        let wp = mcio::plan(&wreq, &map, &mem, &cfg);
        let rp = mcio::plan(&rreq, &map, &mem, &cfg);
        roundtrip(&wp, &rp, &wreq, &rreq).unwrap();
    }

    #[test]
    fn both_strategies_same_file_interleaved() {
        let wreq = interleaved_req(Rw::Write, 4, 7, 13);
        let rreq = interleaved_req(Rw::Read, 4, 7, 13);
        let map = ProcessMap::new(4, 2, Placement::Block);
        let mem = ProcMemory::normal(4, 50, 0.5, 3);
        let cfg = CollectiveConfig::with_buffer(50)
            .msg_ind(64)
            .msg_group(128)
            .mem_min(0);

        let mut file_tp = SparseFile::new();
        let wp = twophase::plan(&wreq, &map, &mem, &cfg);
        execute_write(&wp, &mut file_tp).unwrap();
        verify_write(&wreq, &file_tp).unwrap();

        let mut file_mc = SparseFile::new();
        let wp = mcio::plan(&wreq, &map, &mem, &cfg);
        execute_write(&wp, &mut file_mc).unwrap();
        verify_write(&wreq, &file_mc).unwrap();

        // Byte-identical files from both strategies.
        let cover = wreq.coverage();
        for e in cover {
            assert_eq!(
                file_tp.read_vec(e.offset, e.len as usize),
                file_mc.read_vec(e.offset, e.len as usize)
            );
        }

        // Reads through MC against the TP-written file.
        let rp = mcio::plan(&rreq, &map, &mem, &cfg);
        let (received, _) = execute_read(&rp, &file_tp).unwrap();
        verify_read(&rreq, &file_tp, &received).unwrap();
    }

    #[test]
    fn write_report_counts() {
        let req = serial_req(Rw::Write, 2, 100);
        let map = ProcessMap::new(2, 1, Placement::Block);
        let mem = ProcMemory::uniform(2, 1000);
        let cfg = CollectiveConfig::with_buffer(1000);
        let p = twophase::plan(&req, &map, &mem, &cfg);
        let mut file = SparseFile::new();
        let rep = execute_write(&p, &mut file).unwrap();
        assert_eq!(rep.bytes_shuffled, 200);
        assert_eq!(rep.bytes_io, 200);
        assert_eq!(rep.rounds_executed, 1);
        assert_eq!(rep.peak_agg_buffer, 200);
    }

    #[test]
    fn direction_mismatch_rejected() {
        let req = serial_req(Rw::Write, 2, 10);
        let map = ProcessMap::new(2, 1, Placement::Block);
        let mem = ProcMemory::uniform(2, 100);
        let p = twophase::plan(&req, &map, &mem, &CollectiveConfig::with_buffer(100));
        assert!(execute_read(&p, &SparseFile::new()).is_err());
        let rreq = serial_req(Rw::Read, 2, 10);
        let rp = twophase::plan(&rreq, &map, &mem, &CollectiveConfig::with_buffer(100));
        assert!(execute_write(&rp, &mut SparseFile::new()).is_err());
    }

    #[test]
    fn corrupted_plan_detected() {
        let req = serial_req(Rw::Write, 2, 100);
        let map = ProcessMap::new(2, 2, Placement::Block);
        let mem = ProcMemory::uniform(2, 1000);
        let mut p = twophase::plan(&req, &map, &mem, &CollectiveConfig::with_buffer(1000));
        // Drop one message: a window byte never arrives.
        p.groups[0].rounds[0].messages.remove(0);
        let err = execute_write(&p, &mut SparseFile::new()).unwrap_err();
        assert!(err.contains("never arrived"), "{err}");
    }

    #[test]
    fn overlapping_writers_last_value_consistent() {
        // Two ranks write the same extent; oracle data is identical, so
        // the file is well-defined and verification passes.
        let req = CollectiveRequest::new(
            Rw::Write,
            vec![vec![Extent::new(0, 50)], vec![Extent::new(0, 50)]],
        );
        let map = ProcessMap::new(2, 1, Placement::Block);
        let mem = ProcMemory::uniform(2, 100);
        let p = twophase::plan(&req, &map, &mem, &CollectiveConfig::with_buffer(100));
        let mut file = SparseFile::new();
        let rep = execute_write(&p, &mut file).unwrap();
        verify_write(&req, &file).unwrap();
        assert_eq!(rep.bytes_shuffled, 100);
        assert_eq!(rep.bytes_io, 50);
    }

    #[test]
    fn empty_plan_executes() {
        let req = CollectiveRequest::new(Rw::Write, vec![vec![], vec![]]);
        let map = ProcessMap::new(2, 1, Placement::Block);
        let mem = ProcMemory::uniform(2, 100);
        let p = twophase::plan(&req, &map, &mem, &CollectiveConfig::default());
        let mut file = SparseFile::new();
        let rep = execute_write(&p, &mut file).unwrap();
        assert_eq!(rep.bytes_io, 0);
        assert!(file.is_empty());
    }

    #[test]
    fn many_rounds_small_buffer() {
        let wreq = serial_req(Rw::Write, 4, 256);
        let map = ProcessMap::new(4, 2, Placement::Block);
        let mem = ProcMemory::uniform(4, 16); // tiny buffers → many rounds
        let cfg = CollectiveConfig::with_buffer(16);
        let p = twophase::plan(&wreq, &map, &mem, &cfg);
        assert!(p.max_rounds() >= 32);
        let mut file = SparseFile::new();
        let rep = execute_write(&p, &mut file).unwrap();
        verify_write(&wreq, &file).unwrap();
        assert!(rep.peak_agg_buffer <= 16);
    }
}
