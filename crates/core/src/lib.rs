//! # mcio-core — memory-conscious collective I/O
//!
//! The paper's contribution, implemented end to end, next to the
//! ROMIO-style two-phase baseline it improves on.
//!
//! ## Pipeline
//!
//! ```text
//!              CollectiveRequest (per-rank flattened extents)
//!                      │
//!        ┌─────────────┴──────────────┐
//!        ▼                            ▼
//!  twophase::plan()            mcio::plan()
//!  (ROMIO baseline:            1. group::divide          (§3.1)
//!   1 aggregator/node,         2. ptree::PartitionTree   (§3.2)
//!   even file domains,         3. placement + remerge    (§3.2–3.3)
//!   global rounds)             4. per-group rounds
//!        │                            │
//!        └─────────────┬──────────────┘
//!                      ▼
//!               CollectivePlan
//!        ┌─────────────┼──────────────────┐
//!        ▼             ▼                  ▼
//!   exec_fn        exec_mpi           exec_sim
//!   (byte-correct  (thread-per-rank   (DES timing on the
//!    reference)     over mcio-simpi)   cluster + PFS models)
//! ```
//!
//! Every module carries its paper section in its doc comment. The plan is
//! pure data, so the three executors can cross-check each other: the two
//! functional executors must produce byte-identical files/buffers, and the
//! timing executor replays the same plan against the machine model.

#![warn(missing_docs)]

pub mod adaptive;
pub mod config;
pub mod exec_faults;
pub mod exec_fn;
pub mod exec_mpi;
pub mod exec_sim;
pub mod group;
pub mod hints;
pub mod mcio;
pub mod memory;
pub mod mpiio;
pub mod multitenant;
pub mod pattern;
pub mod placement;
pub mod plan;
pub mod plan_cache;
pub mod ptree;
pub mod request;
pub mod sieving;
pub mod tuner;
pub mod twophase;

pub use adaptive::{AdaptiveOutcome, AdaptivePolicy, OstSignal, SignalSnapshot};
pub use config::{CollectiveConfig, PlacementPolicy, Strategy};
pub use exec_faults::{simulate_adaptive, simulate_faulted, FaultOutcome, FAILOVER_LATENCY};
pub use exec_fn::FunctionalReport;
pub use exec_sim::{
    simulate, simulate_observed, simulate_opts, simulate_two_level, trace_plan, Exchange, Observe,
    Pipeline, RoundPhase, RunMetrics, TimingReport,
};
pub use memory::ProcMemory;
pub use multitenant::{
    run_multitenant, run_multitenant_adaptive, JobOutcome, MultiTenantReport, TenantJob,
};
pub use placement::PlacementDiag;
pub use plan::{
    AggregatorAssignment, CollectivePlan, GroupPlan, IoOp, Message, PlanDiag, Round, SyncMode,
};
pub use plan_cache::{plan_key, PlanCache};
pub use request::{CollectiveRequest, RankRequest};

// Re-export the vocabulary types callers need constantly.
pub use mcio_cluster::{NodeId, Rank};
pub use mcio_pfs::{Extent, Rw};
