//! The ROMIO-style two-phase collective I/O baseline (§2).
//!
//! Faithful to the behaviour the paper compares against:
//!
//! * **One aggregator per node**, chosen statically (the first rank on
//!   each node) — "the ROMIO implementation picks exactly one process per
//!   node as I/O aggregator by default", independent of data distribution
//!   and memory.
//! * The aggregate access region (hull) is **split evenly** into
//!   contiguous file domains, one per aggregator, optionally aligned to
//!   stripe boundaries.
//! * Each aggregator's buffer is `min(cb_buffer, its own process's memory
//!   budget)`; the number of rounds is the **maximum** over aggregators
//!   (`ntimes` in ROMIO), and every round is globally synchronized — one
//!   memory-starved aggregator stalls the entire job.

use crate::config::{CollectiveConfig, Strategy};
use crate::memory::ProcMemory;
use crate::plan::{
    AggregatorAssignment, CollectivePlan, GroupPlan, IoOp, Message, PlanDiag, Round, SyncMode,
};
use crate::request::CollectiveRequest;
use mcio_cluster::{NodeId, ProcessMap, Rank};
use mcio_pfs::extent::coalesce;
use mcio_pfs::{Extent, Rw};

/// Build a two-phase plan.
///
/// ```
/// use mcio_core::{twophase, CollectiveConfig, CollectiveRequest, ProcMemory};
/// use mcio_cluster::ProcessMap;
/// use mcio_pfs::{Extent, Rw};
///
/// let req = CollectiveRequest::new(
///     Rw::Write,
///     (0..4u64).map(|r| vec![Extent::new(r * 1024, 1024)]).collect(),
/// );
/// let map = ProcessMap::block_ppn(4, 2);
/// let mem = ProcMemory::uniform(4, 512);
/// let plan = twophase::plan(&req, &map, &mem, &CollectiveConfig::with_buffer(512));
/// // One aggregator per node, file domains tiling the hull evenly.
/// assert_eq!(plan.naggs(), 2);
/// assert_eq!(plan.check(&req), Ok(()));
/// ```
///
/// # Panics
/// Panics if the request's rank count does not match the process map or
/// memory table, or if the configuration is invalid.
pub fn plan(
    req: &CollectiveRequest,
    map: &ProcessMap,
    mem: &ProcMemory,
    cfg: &CollectiveConfig,
) -> CollectivePlan {
    assert_eq!(req.nranks(), map.nranks(), "request/topology rank mismatch");
    assert_eq!(req.nranks(), mem.nranks(), "request/memory rank mismatch");
    cfg.validate().expect("invalid collective configuration");

    let hull = req.hull();
    let all_ranks: Vec<Rank> = (0..req.nranks()).map(Rank).collect();
    if hull.is_empty() {
        return CollectivePlan {
            rw: req.rw,
            strategy: Strategy::TwoPhase,
            sync: SyncMode::Global,
            diag: PlanDiag::default(),
            groups: vec![GroupPlan {
                ranks: all_ranks,
                aggregators: Vec::new(),
                rounds: Vec::new(),
            }],
        };
    }

    // One aggregator per node hosting ranks: the first rank of the node.
    let agg_ranks: Vec<Rank> = (0..map.nnodes())
        .filter_map(|n| map.ranks_on(NodeId(n)).first().copied())
        .collect();
    let naggs = agg_ranks.len();

    // Even file-domain split, optionally stripe-aligned (ROMIO rounds the
    // per-domain size up to a stripe multiple so boundaries land on
    // stripe edges).
    let mut fd_size = hull.len.div_ceil(naggs as u64);
    if let Some(unit) = cfg.align_fd_to_stripes {
        fd_size = fd_size.div_ceil(unit) * unit;
    }
    let mut aggregators = Vec::with_capacity(naggs);
    for (i, &rank) in agg_ranks.iter().enumerate() {
        let start = (hull.offset + i as u64 * fd_size).min(hull.end());
        let end = (start + fd_size).min(hull.end());
        let fd = Extent::from_bounds(start, end);
        let buffer = cfg.cb_buffer.min(mem.budget(rank)).max(1);
        aggregators.push(AggregatorAssignment {
            rank,
            fd,
            buffer,
            data_bytes: 0,
        });
    }

    // One pass over the ranks charges each extent to the file domains and
    // round windows it touches. Domains tile the hull contiguously, so an
    // extent's domain range is a closed index interval — no per-domain
    // rank scan, which is quadratic in the rank count and unusable at the
    // exascale_2018 machine's 10^6 ranks.
    let mut window_ranks: Vec<Vec<Vec<u32>>> = aggregators
        .iter()
        .map(|a| vec![Vec::new(); a.rounds()])
        .collect();
    for (ri, rr) in req.ranks.iter().enumerate() {
        for e in &rr.extents {
            if e.is_empty() {
                continue;
            }
            let a_lo = ((e.offset - hull.offset) / fd_size) as usize;
            let a_hi = (((e.end() - 1 - hull.offset) / fd_size) as usize).min(naggs - 1);
            for ai in a_lo..=a_hi {
                let (fd, buffer) = (aggregators[ai].fd, aggregators[ai].buffer);
                let Some(clip) = e.intersect(&fd) else {
                    continue;
                };
                aggregators[ai].data_bytes += clip.len;
                let r_lo = ((clip.offset - fd.offset) / buffer) as usize;
                let r_hi = ((clip.end() - 1 - fd.offset) / buffer) as usize;
                for bucket in &mut window_ranks[ai][r_lo..=r_hi] {
                    if bucket.last() != Some(&(ri as u32)) {
                        bucket.push(ri as u32);
                    }
                }
            }
        }
    }

    // ROMIO's ntimes: the global number of rounds is the maximum any
    // aggregator needs.
    let ntimes = aggregators
        .iter()
        .map(AggregatorAssignment::rounds)
        .max()
        .unwrap_or(0);

    let mut rounds = Vec::with_capacity(ntimes);
    for r in 0..ntimes {
        let mut round = Round::default();
        for (a, agg_windows) in aggregators.iter().zip(&window_ranks) {
            let win_start = a.fd.offset + r as u64 * a.buffer;
            if win_start >= a.fd.end() {
                continue; // this aggregator is already done (r >= its rounds)
            }
            let window = Extent::from_bounds(win_start, (win_start + a.buffer).min(a.fd.end()));
            let Some(candidates) = agg_windows.get(r) else {
                continue;
            };
            build_window(
                candidates.iter().map(|&ri| &req.ranks[ri as usize]),
                req.rw,
                a.rank,
                window,
                &mut round,
            );
        }
        rounds.push(round);
    }

    CollectivePlan {
        rw: req.rw,
        strategy: Strategy::TwoPhase,
        sync: SyncMode::Global,
        diag: PlanDiag::default(),
        groups: vec![GroupPlan {
            ranks: all_ranks,
            aggregators,
            rounds,
        }],
    }
}

/// Emit the messages and the I/O op of one aggregator window into
/// `round`. Shared with the memory-conscious planner: the inner loop of
/// the two-phase exchange is identical; the strategies differ in *who*
/// aggregates *what*, not in the per-window mechanics. `ranks` must be
/// in rank order (message order is part of the plan's identity); ranks
/// with no data inside `window` are skipped, so passing a superset of
/// the touching ranks is fine.
pub(crate) fn build_window<'a>(
    ranks: impl Iterator<Item = &'a crate::request::RankRequest>,
    rw: Rw,
    agg: Rank,
    window: Extent,
    round: &mut Round,
) {
    let mut all_extents: Vec<Extent> = Vec::new();
    for rr in ranks {
        let extents = rr.extents_in(&window);
        if extents.is_empty() {
            continue;
        }
        all_extents.extend(extents.iter().copied());
        let (src, dst) = match rw {
            Rw::Write => (rr.rank, agg),
            Rw::Read => (agg, rr.rank),
        };
        round.messages.push(Message { src, dst, extents });
    }
    let extents = coalesce(all_extents);
    if !extents.is_empty() {
        round.ios.push(IoOp {
            agg,
            window,
            extents,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcio_cluster::Placement;

    fn setup(
        nranks: usize,
        nnodes: usize,
        per_rank: Vec<Vec<Extent>>,
        buffer: u64,
    ) -> (CollectiveRequest, ProcessMap, ProcMemory, CollectiveConfig) {
        let req = CollectiveRequest::new(Rw::Write, per_rank);
        let map = ProcessMap::new(nranks, nnodes, Placement::Block);
        let mem = ProcMemory::uniform(nranks, u64::MAX / 2);
        let mut cfg = CollectiveConfig::with_buffer(buffer);
        cfg.mem_min = 0;
        (req, map, mem, cfg)
    }

    #[test]
    fn one_aggregator_per_node() {
        let (req, map, mem, cfg) = setup(
            8,
            4,
            (0..8).map(|r| vec![Extent::new(r * 10, 10)]).collect(),
            1024,
        );
        let p = plan(&req, &map, &mem, &cfg);
        assert_eq!(p.naggs(), 4);
        let aggs: Vec<Rank> = p.aggregators().map(|a| a.rank).collect();
        // First rank of each node: 0, 2, 4, 6.
        assert_eq!(aggs, vec![Rank(0), Rank(2), Rank(4), Rank(6)]);
        assert_eq!(p.check(&req), Ok(()));
    }

    #[test]
    fn file_domains_tile_hull_evenly() {
        let (req, map, mem, cfg) = setup(
            4,
            2,
            (0..4).map(|r| vec![Extent::new(r * 25, 25)]).collect(),
            1024,
        );
        let p = plan(&req, &map, &mem, &cfg);
        let fds: Vec<Extent> = p.aggregators().map(|a| a.fd).collect();
        assert_eq!(fds, vec![Extent::new(0, 50), Extent::new(50, 50)]);
    }

    #[test]
    fn rounds_are_global_max() {
        // Rank 0 (aggregator of node 0) has a tiny budget → many rounds.
        let req = CollectiveRequest::new(
            Rw::Write,
            (0..4).map(|r| vec![Extent::new(r * 100, 100)]).collect(),
        );
        let map = ProcessMap::new(4, 2, Placement::Block);
        let mem = ProcMemory::from_budgets(vec![10, 1000, 1000, 1000]);
        let mut cfg = CollectiveConfig::with_buffer(1000);
        cfg.mem_min = 0;
        let p = plan(&req, &map, &mem, &cfg);
        // Agg 0: fd 200 bytes / buffer 10 = 20 rounds; agg 2: 1 round.
        assert_eq!(p.max_rounds(), 20);
        assert_eq!(p.check(&req), Ok(()));
        // Late rounds only involve the starved aggregator.
        let last = &p.groups[0].rounds[19];
        assert_eq!(last.ios.len(), 1);
        assert_eq!(last.ios[0].agg, Rank(0));
    }

    #[test]
    fn interleaved_request_plans_correctly() {
        // Two ranks interleave 4-byte blocks over [0, 64).
        let per_rank: Vec<Vec<Extent>> = (0..2)
            .map(|r| (0..8).map(|b| Extent::new((b * 2 + r) * 4, 4)).collect())
            .collect();
        let (req, map, mem, cfg) = setup(2, 2, per_rank, 16);
        let p = plan(&req, &map, &mem, &cfg);
        assert_eq!(p.check(&req), Ok(()));
        // Each window is dense, so each IoOp is one contiguous extent.
        for g in &p.groups {
            for r in &g.rounds {
                for io in &r.ios {
                    assert_eq!(io.extents.len(), 1);
                }
            }
        }
    }

    #[test]
    fn read_plan_reverses_messages() {
        let mut req = CollectiveRequest::new(
            Rw::Read,
            vec![vec![Extent::new(0, 10)], vec![Extent::new(10, 10)]],
        );
        req.rw = Rw::Read;
        let map = ProcessMap::new(2, 1, Placement::Block);
        let mem = ProcMemory::uniform(2, 1 << 30);
        let cfg = CollectiveConfig::with_buffer(1024);
        let p = plan(&req, &map, &mem, &cfg);
        assert_eq!(p.check(&req), Ok(()));
        for m in &p.groups[0].rounds[0].messages {
            assert_eq!(m.src, Rank(0)); // the aggregator
        }
    }

    #[test]
    fn empty_request_empty_plan() {
        let (req, map, mem, cfg) = setup(3, 3, vec![vec![], vec![], vec![]], 64);
        let p = plan(&req, &map, &mem, &cfg);
        assert_eq!(p.naggs(), 0);
        assert_eq!(p.max_rounds(), 0);
        assert_eq!(p.check(&req), Ok(()));
    }

    #[test]
    fn single_rank_job() {
        let (req, map, mem, cfg) = setup(1, 1, vec![vec![Extent::new(100, 50)]], 20);
        let p = plan(&req, &map, &mem, &cfg);
        assert_eq!(p.naggs(), 1);
        assert_eq!(p.max_rounds(), 3); // 50 / 20
        assert_eq!(p.check(&req), Ok(()));
    }

    #[test]
    fn stripe_alignment_rounds_fd_size() {
        let (req, map, mem, mut cfg) = setup(
            4,
            2,
            (0..4).map(|r| vec![Extent::new(r * 25, 25)]).collect(),
            1024,
        );
        cfg.align_fd_to_stripes = Some(64);
        let p = plan(&req, &map, &mem, &cfg);
        let fds: Vec<Extent> = p.aggregators().map(|a| a.fd).collect();
        // fd_size = ceil(ceil(100/2)/64)*64 = 64.
        assert_eq!(fds[0], Extent::new(0, 64));
        assert_eq!(fds[1], Extent::new(64, 36));
        assert_eq!(p.check(&req), Ok(()));
    }

    #[test]
    fn holes_in_request_preserved() {
        // Ranks request [0,10) and [90,10): the hull has a big hole.
        let (req, map, mem, cfg) = setup(
            2,
            2,
            vec![vec![Extent::new(0, 10)], vec![Extent::new(90, 10)]],
            1024,
        );
        let p = plan(&req, &map, &mem, &cfg);
        assert_eq!(p.check(&req), Ok(()));
        let stats = p.stats(None);
        assert_eq!(stats.io_bytes, 20); // holes not written
    }

    #[test]
    fn overlapping_writes_single_io() {
        // Two ranks write the same region: messages double, I/O does not.
        let (req, map, mem, cfg) = setup(
            2,
            1,
            vec![vec![Extent::new(0, 10)], vec![Extent::new(0, 10)]],
            1024,
        );
        let p = plan(&req, &map, &mem, &cfg);
        assert_eq!(p.check(&req), Ok(()));
        let stats = p.stats(None);
        assert_eq!(stats.message_bytes, 20);
        assert_eq!(stats.io_bytes, 10);
    }
}
