//! MPI-IO hint parsing: the `MPI_Info`-style key/value interface ROMIO
//! exposes its collective tunables through, extended with the paper's
//! memory-conscious knobs.
//!
//! Recognized keys (values are byte counts unless noted; byte counts
//! accept plain integers or `K`/`M`/`G` suffixes, case-insensitive):
//!
//! | key | maps to |
//! |---|---|
//! | `cb_buffer_size` | [`CollectiveConfig::cb_buffer`] |
//! | `striping_unit` | [`CollectiveConfig::align_fd_to_stripes`] |
//! | `mcio_msg_ind` | [`CollectiveConfig::msg_ind`] |
//! | `mcio_msg_group` | [`CollectiveConfig::msg_group`] |
//! | `mcio_mem_min` | [`CollectiveConfig::mem_min`] |
//! | `mcio_nah` | [`CollectiveConfig::nah`] (plain integer) |
//! | `mcio_placement` | `memory_aware` \| `first_candidate` |
//!
//! Unknown keys are ignored, as MPI requires of info hints.

use crate::config::{CollectiveConfig, PlacementPolicy};

/// Error describing the first malformed hint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HintError {
    /// The offending key.
    pub key: String,
    /// What was wrong with its value.
    pub reason: String,
}

impl std::fmt::Display for HintError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "hint `{}`: {}", self.key, self.reason)
    }
}

impl std::error::Error for HintError {}

/// Parse a byte-count hint value: `"16777216"`, `"16m"`, `"4K"`, `"1G"`.
pub fn parse_bytes(value: &str) -> Result<u64, String> {
    let v = value.trim();
    if v.is_empty() {
        return Err("empty value".into());
    }
    let (digits, multiplier) = match v.chars().last().expect("non-empty") {
        'k' | 'K' => (&v[..v.len() - 1], 1u64 << 10),
        'm' | 'M' => (&v[..v.len() - 1], 1u64 << 20),
        'g' | 'G' => (&v[..v.len() - 1], 1u64 << 30),
        _ => (v, 1),
    };
    digits
        .trim()
        .parse::<u64>()
        .map_err(|e| format!("not a byte count: {e}"))?
        .checked_mul(multiplier)
        .ok_or_else(|| "byte count overflows".into())
}

/// Apply hints on top of a base configuration.
pub fn apply_hints(
    mut cfg: CollectiveConfig,
    hints: &[(&str, &str)],
) -> Result<CollectiveConfig, HintError> {
    let err = |key: &str, reason: String| HintError {
        key: key.to_string(),
        reason,
    };
    for &(key, value) in hints {
        match key {
            "cb_buffer_size" => {
                cfg.cb_buffer = parse_bytes(value).map_err(|r| err(key, r))?;
            }
            "striping_unit" => {
                cfg.align_fd_to_stripes = Some(parse_bytes(value).map_err(|r| err(key, r))?);
            }
            "mcio_msg_ind" => {
                cfg.msg_ind = parse_bytes(value).map_err(|r| err(key, r))?;
            }
            "mcio_msg_group" => {
                cfg.msg_group = parse_bytes(value).map_err(|r| err(key, r))?;
            }
            "mcio_mem_min" => {
                cfg.mem_min = parse_bytes(value).map_err(|r| err(key, r))?;
            }
            "mcio_nah" => {
                cfg.nah = value
                    .trim()
                    .parse::<usize>()
                    .map_err(|e| err(key, format!("not an integer: {e}")))?;
            }
            "mcio_placement" => {
                cfg.placement = match value.trim() {
                    "memory_aware" => PlacementPolicy::MemoryAware,
                    "first_candidate" => PlacementPolicy::FirstCandidate,
                    other => return Err(err(key, format!("unknown placement policy `{other}`"))),
                };
            }
            // MPI semantics: unrecognized hints are silently ignored.
            _ => {}
        }
    }
    cfg.validate().map_err(|reason| HintError {
        key: "<combined>".into(),
        reason,
    })?;
    Ok(cfg)
}

/// Build a configuration from hints alone (on top of the defaults).
pub fn config_from_hints(hints: &[(&str, &str)]) -> Result<CollectiveConfig, HintError> {
    apply_hints(CollectiveConfig::default(), hints)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_suffixes() {
        assert_eq!(parse_bytes("4096"), Ok(4096));
        assert_eq!(parse_bytes("4k"), Ok(4096));
        assert_eq!(parse_bytes("4K"), Ok(4096));
        assert_eq!(parse_bytes("16m"), Ok(16 << 20));
        assert_eq!(parse_bytes("2G"), Ok(2 << 30));
        assert_eq!(parse_bytes(" 8 M "), Ok(8 << 20));
        assert!(parse_bytes("").is_err());
        assert!(parse_bytes("abc").is_err());
        assert!(parse_bytes("999999999999G").is_err());
    }

    #[test]
    fn full_hint_set() {
        let cfg = config_from_hints(&[
            ("cb_buffer_size", "8M"),
            ("striping_unit", "1M"),
            ("mcio_msg_ind", "64M"),
            ("mcio_msg_group", "256M"),
            ("mcio_mem_min", "4M"),
            ("mcio_nah", "3"),
            ("mcio_placement", "first_candidate"),
            ("romio_cb_read", "enable"), // ignored
        ])
        .unwrap();
        assert_eq!(cfg.cb_buffer, 8 << 20);
        assert_eq!(cfg.align_fd_to_stripes, Some(1 << 20));
        assert_eq!(cfg.msg_ind, 64 << 20);
        assert_eq!(cfg.msg_group, 256 << 20);
        assert_eq!(cfg.mem_min, 4 << 20);
        assert_eq!(cfg.nah, 3);
        assert_eq!(cfg.placement, PlacementPolicy::FirstCandidate);
    }

    #[test]
    fn bad_values_rejected_with_key() {
        let e = config_from_hints(&[("mcio_nah", "lots")]).unwrap_err();
        assert_eq!(e.key, "mcio_nah");
        let e = config_from_hints(&[("cb_buffer_size", "x")]).unwrap_err();
        assert_eq!(e.key, "cb_buffer_size");
        let e = config_from_hints(&[("mcio_placement", "round_robin")]).unwrap_err();
        assert!(e.reason.contains("round_robin"));
    }

    #[test]
    fn combined_validation_runs() {
        // nah = 0 is individually parseable but invalid as a config.
        let e = config_from_hints(&[("mcio_nah", "0")]).unwrap_err();
        assert!(e.reason.contains("nah"));
    }

    #[test]
    fn unknown_hints_ignored() {
        let base = CollectiveConfig::default();
        let cfg = apply_hints(base.clone(), &[("some_vendor_hint", "42")]).unwrap();
        assert_eq!(cfg, base);
    }
}
