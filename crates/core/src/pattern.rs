//! Access-pattern analysis.
//!
//! §3.1 distinguishes two cases before dividing aggregation groups: the
//! common one, where "data segments are serially distributed among
//! processes" (each rank owns one compact span, spans ordered by rank),
//! and the complex one, where "beginning and ending offsets are
//! interwoven with each other" (interleaved file views). [`analyze`]
//! classifies a request and computes the quantities both planners use.

use crate::request::CollectiveRequest;
use mcio_pfs::Extent;

/// Shape of a collective access pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PatternKind {
    /// No rank requested anything.
    Empty,
    /// Rank spans are pairwise disjoint and ordered by rank: offset
    /// arithmetic alone can divide groups (Figure 4's case).
    Serial,
    /// Rank spans overlap (strided/interleaved file views): group
    /// division must analyze the per-rank extents.
    Interleaved,
}

/// Summary of a collective request's shape.
#[derive(Debug, Clone, PartialEq)]
pub struct PatternInfo {
    /// Classification.
    pub kind: PatternKind,
    /// Aggregate access region (hull).
    pub hull: Extent,
    /// Total requested bytes.
    pub total_bytes: u64,
    /// Number of ranks with non-empty requests.
    pub active_ranks: usize,
    /// Per-rank spans, indexed by rank (empty extent for idle ranks).
    pub spans: Vec<Extent>,
    /// Fraction of the hull actually requested, in `[0, 1]`
    /// (1.0 = dense; small = sparse/holey).
    pub density: f64,
}

/// Analyze a collective request.
pub fn analyze(req: &CollectiveRequest) -> PatternInfo {
    let spans: Vec<Extent> = req.ranks.iter().map(|r| r.span()).collect();
    let hull = req.hull();
    let total_bytes = req.total_bytes();
    let active_ranks = req.ranks.iter().filter(|r| !r.is_empty()).count();
    if total_bytes == 0 {
        return PatternInfo {
            kind: PatternKind::Empty,
            hull,
            total_bytes,
            active_ranks,
            spans,
            density: 0.0,
        };
    }
    // Serial ⇔ the non-empty spans, visited in rank order, are
    // non-overlapping and monotonically increasing.
    let mut serial = true;
    let mut prev_end: Option<u64> = None;
    for span in spans.iter().filter(|s| !s.is_empty()) {
        if let Some(end) = prev_end {
            if span.offset < end {
                serial = false;
                break;
            }
        }
        prev_end = Some(span.end());
    }
    let covered = mcio_pfs::extent::covered_bytes(
        &req.ranks
            .iter()
            .flat_map(|r| r.extents.iter().copied())
            .collect::<Vec<_>>(),
    );
    PatternInfo {
        kind: if serial {
            PatternKind::Serial
        } else {
            PatternKind::Interleaved
        },
        hull,
        total_bytes,
        active_ranks,
        spans,
        density: if hull.is_empty() {
            0.0
        } else {
            covered as f64 / hull.len as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcio_pfs::Rw;

    fn req(per_rank: Vec<Vec<Extent>>) -> CollectiveRequest {
        CollectiveRequest::new(Rw::Write, per_rank)
    }

    #[test]
    fn empty_pattern() {
        let info = analyze(&req(vec![vec![], vec![]]));
        assert_eq!(info.kind, PatternKind::Empty);
        assert_eq!(info.active_ranks, 0);
        assert_eq!(info.density, 0.0);
    }

    #[test]
    fn serial_pattern() {
        let info = analyze(&req(vec![
            vec![Extent::new(0, 10)],
            vec![Extent::new(10, 10)],
            vec![Extent::new(25, 5)],
        ]));
        assert_eq!(info.kind, PatternKind::Serial);
        assert_eq!(info.hull, Extent::new(0, 30));
        assert_eq!(info.total_bytes, 25);
        assert_eq!(info.active_ranks, 3);
        assert!((info.density - 25.0 / 30.0).abs() < 1e-12);
    }

    #[test]
    fn serial_with_idle_ranks() {
        // Idle ranks do not break seriality.
        let info = analyze(&req(vec![
            vec![Extent::new(0, 10)],
            vec![],
            vec![Extent::new(10, 10)],
        ]));
        assert_eq!(info.kind, PatternKind::Serial);
        assert_eq!(info.active_ranks, 2);
    }

    #[test]
    fn interleaved_pattern() {
        // Rank 0 and 1 stride through the same region.
        let info = analyze(&req(vec![
            vec![Extent::new(0, 4), Extent::new(8, 4)],
            vec![Extent::new(4, 4), Extent::new(12, 4)],
        ]));
        assert_eq!(info.kind, PatternKind::Interleaved);
        assert_eq!(info.hull, Extent::new(0, 16));
        assert!((info.density - 1.0).abs() < 1e-12);
    }

    #[test]
    fn out_of_order_ranks_are_interleaved() {
        // Spans disjoint but rank 1 before rank 0: offset linearization
        // by rank does not hold.
        let info = analyze(&req(vec![
            vec![Extent::new(100, 10)],
            vec![Extent::new(0, 10)],
        ]));
        assert_eq!(info.kind, PatternKind::Interleaved);
    }

    #[test]
    fn touching_spans_are_serial() {
        let info = analyze(&req(vec![
            vec![Extent::new(0, 10)],
            vec![Extent::new(10, 10)],
        ]));
        assert_eq!(info.kind, PatternKind::Serial);
    }

    #[test]
    fn overlap_counted_once_in_density() {
        let info = analyze(&req(vec![
            vec![Extent::new(0, 10)],
            vec![Extent::new(5, 10)],
        ]));
        assert_eq!(info.total_bytes, 20);
        assert!((info.density - 1.0).abs() < 1e-12);
    }
}
