//! End-to-end differential harness for the DES resource engines: the
//! FIFO and fair-share disciplines must be *byte-identical* whenever no
//! resource is ever shared, must both conserve bytes under contention,
//! and must replay deterministically (including across threads).
//!
//! The CI `engine-equiv` job runs exactly this suite; the DES-level
//! counterpart (reference-model agreement, cancellation ledger) lives
//! in `crates/des/tests/fair_share_props.rs`.

use mcio_cluster::spec::ClusterSpec;
use mcio_cluster::ProcessMap;
use mcio_core::{
    mcio, simulate_observed, twophase, CollectiveConfig, CollectiveRequest, Exchange, Extent,
    Observe, Pipeline, ProcMemory, Rw,
};
use mcio_des::SharePolicy;
use mcio_obs::{MetricsFormat, Registry};
use std::sync::Arc;

/// One observed run: deterministic metrics document, chrome trace, and
/// the engine profile, for a given engine policy.
fn observed(
    req: &CollectiveRequest,
    ppn: usize,
    mc: bool,
    engine: SharePolicy,
) -> (String, String, mcio_des::EngineProfile, u64) {
    let ranks = req.nranks();
    let map = ProcessMap::block_ppn(ranks, ppn);
    let spec = ClusterSpec::small(map.nnodes().max(1), ppn.max(1));
    let env = ProcMemory::uniform(ranks, 1 << 20);
    let cfg = CollectiveConfig::with_buffer(1 << 20);
    let plan = if mc {
        mcio::plan(req, &map, &env, &cfg)
    } else {
        twophase::plan(req, &map, &env, &cfg)
    };
    plan.check(req).expect("plan sound");
    let reg = Arc::new(Registry::new());
    let (timing, trace) = simulate_observed(
        &plan,
        &map,
        &spec,
        Pipeline::Serial,
        Exchange::Direct,
        Observe {
            registry: Some(&reg),
            trace: true,
            prof: None,
            engine,
        },
    );
    let doc = MetricsFormat::Json.render(&reg.snapshot());
    (
        doc,
        trace.expect("trace requested"),
        timing.engine,
        timing.elapsed.as_nanos(),
    )
}

fn single_rank_request(len: u64) -> CollectiveRequest {
    // One rank, ONE extent: the whole collective is one serial chain,
    // so no fabric or PFS resource ever holds two transfers at once.
    // (A second extent already spawns a concurrent chain and genuine
    // sharing — see `engines_differ_only_in_simulated_time`.)
    CollectiveRequest::new(Rw::Write, vec![vec![Extent::new(0, len)]])
}

fn contended_request(ranks: usize) -> CollectiveRequest {
    let mut per_rank = Vec::with_capacity(ranks);
    for r in 0..ranks {
        per_rank.push(vec![
            Extent::new(r as u64 * 100_000, 30_000),
            Extent::new(r as u64 * 100_000 + 40_000, 20_000),
        ]);
    }
    CollectiveRequest::new(Rw::Write, per_rank)
}

/// Claim (a): with a single rank nothing is ever shared, and the two
/// engines must agree byte for byte — the metrics document, the chrome
/// trace, the engine profile (same event count, zero cancellations),
/// and the elapsed time.
#[test]
fn unshared_single_rank_cell_is_byte_identical_across_engines() {
    for mc in [false, true] {
        for len in [64, 4096, 1 << 16] {
            let req = single_rank_request(len);
            let (doc_f, trace_f, prof_f, ns_f) = observed(&req, 1, mc, SharePolicy::Fifo);
            let (doc_p, trace_p, prof_p, ns_p) = observed(&req, 1, mc, SharePolicy::FairShare);
            assert_eq!(ns_f, ns_p, "elapsed (mc={mc}, len={len})");
            assert_eq!(prof_f, prof_p, "engine profile (mc={mc}, len={len})");
            assert_eq!(
                prof_f.events_cancelled, 0,
                "nothing to re-predict (mc={mc})"
            );
            assert_eq!(doc_f, doc_p, "metrics document (mc={mc}, len={len})");
            assert_eq!(trace_f, trace_p, "chrome trace (mc={mc}, len={len})");
        }
    }
}

/// Claim (b): under real multi-rank contention the engines model
/// *different queueing physics* — timing may move — but both must
/// conserve every planned byte through the PFS, and the fair engine
/// must actually engage (re-predictions happen).
#[test]
fn byte_conservation_holds_under_fair_sharing() {
    for mc in [false, true] {
        let req = contended_request(12);
        let ranks = req.nranks();
        let map = ProcessMap::block_ppn(ranks, 4);
        let spec = ClusterSpec::small(map.nnodes(), 4);
        let env = ProcMemory::uniform(ranks, 1 << 20);
        let cfg = CollectiveConfig::with_buffer(1 << 20);
        let plan = if mc {
            mcio::plan(&req, &map, &env, &cfg)
        } else {
            twophase::plan(&req, &map, &env, &cfg)
        };
        plan.check(&req).expect("plan sound");
        let plan_io_bytes: u64 = plan.groups.iter().map(|g| g.io_bytes()).sum();
        let reg = Arc::new(Registry::new());
        let (timing, _) = simulate_observed(
            &plan,
            &map,
            &spec,
            Pipeline::Serial,
            Exchange::Direct,
            Observe {
                registry: Some(&reg),
                trace: false,
                prof: None,
                engine: SharePolicy::FairShare,
            },
        );
        assert_eq!(plan_io_bytes, req.total_bytes());
        assert_eq!(reg.counter_total("pfs.ost.bytes"), plan_io_bytes);
        assert_eq!(reg.counter_total("run.bytes"), plan_io_bytes);
        assert!(
            timing.engine.events_cancelled > 0,
            "contended run should re-predict (mc={mc})"
        );
        assert_eq!(
            timing.engine.events_scheduled,
            timing.engine.events_fired + timing.engine.events_cancelled
        );
    }
}

/// Claim (d): seeded replay is deterministic under fair sharing, and
/// running independent cells on OS threads produces the same bytes as
/// running them sequentially (each cell is a self-contained DES run).
#[test]
fn fair_replay_and_parallel_cells_are_byte_identical() {
    let cells: Vec<(bool, usize)> = vec![(false, 8), (true, 8), (false, 5), (true, 5)];
    let run_cell = |&(mc, ranks): &(bool, usize)| {
        let req = contended_request(ranks);
        observed(&req, 4, mc, SharePolicy::FairShare)
    };
    let sequential: Vec<_> = cells.iter().map(run_cell).collect();
    let replay: Vec<_> = cells.iter().map(run_cell).collect();
    assert_eq!(sequential, replay, "sequential replay must be exact");
    let threaded: Vec<_> = cells
        .iter()
        .map(|cell| {
            let cell = *cell;
            std::thread::spawn(move || {
                let req = contended_request(cell.1);
                observed(&req, 4, cell.0, SharePolicy::FairShare)
            })
        })
        .collect::<Vec<_>>()
        .into_iter()
        .map(|h| h.join().unwrap())
        .collect();
    assert_eq!(sequential, threaded, "thread placement must not leak in");
}

/// Composition sanity: the plan is engine-independent (identical bytes
/// planned either way); only simulated time may move between engines,
/// and the simulated elapsed stays positive and finite under both.
#[test]
fn engines_differ_only_in_simulated_time() {
    let req = contended_request(10);
    let (_, _, prof_f, ns_f) = observed(&req, 4, true, SharePolicy::Fifo);
    let (_, _, prof_p, ns_p) = observed(&req, 4, true, SharePolicy::FairShare);
    assert!(ns_f > 0 && ns_p > 0);
    // Same DAG: both engines see the same activities and resources.
    assert_eq!(prof_f.activities, prof_p.activities);
    assert_eq!(prof_f.resources, prof_p.resources);
    // FIFO never cancels; fair re-predicts under contention.
    assert_eq!(prof_f.events_cancelled, 0);
    assert!(prof_p.events_cancelled > 0);
}
