//! Property-based tests of the observability layer: metric byte
//! conservation and trace-file well-formedness for random access
//! patterns.

use mcio_cluster::spec::ClusterSpec;
use mcio_cluster::ProcessMap;
use mcio_core::{
    mcio, simulate_observed, twophase, CollectiveConfig, CollectiveRequest, Exchange, Extent,
    Observe, Pipeline, ProcMemory, Rw,
};
use mcio_obs::{json, Registry};
use proptest::prelude::*;
use std::sync::Arc;

/// A small random collective: `ranks` ranks, each with a handful of
/// extents carved out of a shared file region.
fn random_request(rw: Rw, ranks: usize, seeds: &[u64]) -> CollectiveRequest {
    let mut per_rank = Vec::with_capacity(ranks);
    for r in 0..ranks {
        let mut extents = Vec::new();
        let mut pos = (seeds[r % seeds.len()] % 8192) + r as u64 * 100_000;
        let n = 1 + (seeds[(r + 1) % seeds.len()] as usize % 4);
        // Extent sizes are bounded so each rank stays inside its own
        // 100 kB region: overlapping writes would legitimately dedup
        // in the plan and break exact byte conservation.
        for k in 0..n {
            let len = 512 + (seeds[(r + k) % seeds.len()] % 16_000);
            extents.push(Extent::new(pos, len));
            pos += len + (seeds[(r + k + 1) % seeds.len()] % 4096);
        }
        per_rank.push(extents);
    }
    CollectiveRequest::new(rw, per_rank)
}

fn observed_run(req: &CollectiveRequest, mc: bool) -> (Arc<Registry>, String, u64) {
    let ranks = req.nranks();
    let map = ProcessMap::block_ppn(ranks, 4);
    let mut spec = ClusterSpec::small(map.nnodes(), 4);
    spec.nodes = spec.nodes.max(map.nnodes());
    let env = ProcMemory::uniform(ranks, 1 << 20);
    let cfg = CollectiveConfig::with_buffer(1 << 20);
    let plan = if mc {
        mcio::plan(req, &map, &env, &cfg)
    } else {
        twophase::plan(req, &map, &env, &cfg)
    };
    plan.check(req).expect("plan sound");
    let plan_io_bytes: u64 = plan.groups.iter().map(|g| g.io_bytes()).sum();
    let reg = Arc::new(Registry::new());
    let (_, trace) = simulate_observed(
        &plan,
        &map,
        &spec,
        Pipeline::Serial,
        Exchange::Direct,
        Observe {
            registry: Some(&reg),
            trace: true,
            prof: None,
            ..Observe::default()
        },
    );
    (reg, trace.expect("trace requested"), plan_io_bytes)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Bytes are conserved end to end: the planner's I/O byte counter,
    /// the PFS per-OST byte counters, and the request's own total all
    /// agree, for random patterns under both strategies.
    #[test]
    fn metrics_conserve_bytes(
        ranks in 2usize..24,
        s0 in 1u64..u64::MAX,
        s1 in 1u64..u64::MAX,
        s2 in 1u64..u64::MAX,
        mc in any::<bool>(),
        write in any::<bool>(),
    ) {
        let rw = if write { Rw::Write } else { Rw::Read };
        let req = random_request(rw, ranks, &[s0, s1, s2]);
        let (reg, _, plan_io_bytes) = observed_run(&req, mc);
        prop_assert_eq!(plan_io_bytes, req.total_bytes());
        // Planner counter == plan bytes.
        prop_assert_eq!(reg.counter_total("plan.io_bytes"), plan_io_bytes);
        // Every planned byte reached the file system exactly once.
        prop_assert_eq!(reg.counter_total("pfs.ost.bytes"), plan_io_bytes);
        // The run-level counter agrees too.
        prop_assert_eq!(reg.counter_total("run.bytes"), plan_io_bytes);
        // Shuffle traffic can't exceed the payload: every message byte
        // is a request byte moving to (or from) its aggregator once.
        prop_assert!(reg.counter_total("plan.message_bytes") <= plan_io_bytes);
    }

    /// The exported Chrome trace parses with the crate's own JSON
    /// parser, and complete events never overlap within one lane
    /// (pid, tid): each resource serves one activity at a time and
    /// each chain runs its phases in sequence.
    #[test]
    fn trace_is_valid_and_lanes_do_not_overlap(
        ranks in 2usize..16,
        s0 in 1u64..u64::MAX,
        s1 in 1u64..u64::MAX,
        write in any::<bool>(),
    ) {
        let rw = if write { Rw::Write } else { Rw::Read };
        let req = random_request(rw, ranks, &[s0, s1, 7]);
        let (_, trace, _) = observed_run(&req, true);
        let doc = json::parse(&trace).expect("trace is valid JSON");
        let events = doc.as_array().expect("trace is a JSON array");
        prop_assert!(!events.is_empty());
        let mut lanes: std::collections::BTreeMap<(u64, u64), Vec<(f64, f64)>> =
            std::collections::BTreeMap::new();
        for ev in events {
            let ph = ev.get("ph").and_then(|v| v.as_str()).expect("ph field");
            match ph {
                "M" => continue, // metadata
                "X" => {
                    let pid = ev.get("pid").and_then(|v| v.as_f64()).expect("pid") as u64;
                    let tid = ev.get("tid").and_then(|v| v.as_f64()).expect("tid") as u64;
                    let ts = ev.get("ts").and_then(|v| v.as_f64()).expect("ts");
                    let dur = ev.get("dur").and_then(|v| v.as_f64()).expect("dur");
                    prop_assert!(ts >= 0.0 && dur >= 0.0);
                    lanes.entry((pid, tid)).or_default().push((ts, ts + dur));
                }
                other => prop_assert!(false, "unexpected event phase {}", other),
            }
        }
        prop_assert!(!lanes.is_empty(), "trace has no complete events");
        for ((pid, tid), mut spans) in lanes {
            spans.sort_by(|a, b| a.partial_cmp(b).unwrap());
            for w in spans.windows(2) {
                // Strict ordering up to the exporter's 1ns/1000 = 0.001us
                // rounding granularity.
                prop_assert!(
                    w[1].0 >= w[0].1 - 0.0015,
                    "overlap in lane pid={} tid={}: {:?} then {:?}",
                    pid, tid, w[0], w[1]
                );
            }
        }
    }

    /// Round-phase spans (pid 2) never dangle over dead time: every
    /// phase interval is covered by the union of resource service
    /// spans (pid 1), except for gaps no longer than one wire latency
    /// (a message in flight occupies no lane). This is the invariant
    /// that makes critical-path attribution meaningful — whenever a
    /// chain claims to be exchanging or doing I/O, some membus, NIC,
    /// or OST is actually serving it (or a message is on the wire).
    #[test]
    fn round_phases_are_covered_by_resource_spans(
        ranks in 2usize..16,
        s0 in 1u64..u64::MAX,
        s1 in 1u64..u64::MAX,
        mc in any::<bool>(),
        write in any::<bool>(),
    ) {
        let rw = if write { Rw::Write } else { Rw::Read };
        let req = random_request(rw, ranks, &[s0, s1, 13]);
        let (_, trace, _) = observed_run(&req, mc);
        let doc = json::parse(&trace).expect("trace is valid JSON");
        let events = doc.as_array().expect("trace is a JSON array");
        // Nanosecond intervals per pid (ts/dur are microsecond floats
        // with exact 0.001 us granularity).
        let ns = |v: f64| (v * 1000.0).round() as u64;
        let mut resources: Vec<(u64, u64)> = Vec::new();
        let mut phases: Vec<(String, u64, u64)> = Vec::new();
        for ev in events {
            if ev.get("ph").and_then(|v| v.as_str()) != Some("X") {
                continue;
            }
            let pid = ev.get("pid").and_then(|v| v.as_f64()).expect("pid") as u64;
            let ts = ns(ev.get("ts").and_then(|v| v.as_f64()).expect("ts"));
            let dur = ns(ev.get("dur").and_then(|v| v.as_f64()).expect("dur"));
            match pid {
                1 => resources.push((ts, ts + dur)),
                2 => {
                    let name = ev.get("name").and_then(|v| v.as_str()).expect("name");
                    phases.push((name.to_string(), ts, ts + dur));
                }
                other => prop_assert!(false, "unexpected pid {}", other),
            }
        }
        prop_assert!(!phases.is_empty(), "no round-phase spans");
        // Merge the resource intervals into a disjoint union.
        resources.sort_unstable();
        let mut merged: Vec<(u64, u64)> = Vec::new();
        for (s, e) in resources {
            match merged.last_mut() {
                Some(last) if s <= last.1 => last.1 = last.1.max(e),
                _ => merged.push((s, e)),
            }
        }
        // The only legitimate all-idle time inside a phase is a message
        // on the wire: one one-way latency, plus exporter rounding.
        let max_gap = ClusterSpec::small(1, 4).node.nic_latency.as_nanos() + 4;
        for (name, start, end) in phases {
            let mut cursor = start;
            let mut worst = 0u64;
            for &(s, e) in &merged {
                if e <= start || s >= end {
                    continue;
                }
                let s = s.max(start);
                if s > cursor {
                    worst = worst.max(s - cursor);
                }
                cursor = cursor.max(e.min(end));
            }
            if end > cursor {
                worst = worst.max(end - cursor);
            }
            prop_assert!(
                worst <= max_gap,
                "phase {} [{start}, {end}) has a {worst} ns all-idle gap (max allowed {max_gap})",
                name
            );
        }
    }
}
