//! Chaos property suite for the closed-loop adaptive controller.
//!
//! A seeded generator assembles arbitrary fault plans — slow and
//! stalled OSTs, transient request failures, aggregator crashes,
//! memory shocks, in any mix — and runs them through
//! [`simulate_adaptive`] under every policy and both strategies. The
//! contracts:
//!
//! * every generated plan *terminates* and the executed plan still
//!   passes `check()` (byte conservation per I/O op, full leaf
//!   coverage, buffer bounds);
//! * when the run completes, the written file bytes are identical to
//!   the fault-free golden image — the controller re-plans *time*,
//!   never *data*;
//! * chaos runs replay deterministically, trace bytes included;
//! * `AdaptivePolicy::Off` with an *empty* fault plan is byte-identical
//!   to `simulate_observed` for both strategies — the controller is a
//!   conservative extension of the static executor.

use mcio_cluster::spec::ClusterSpec;
use mcio_cluster::ProcessMap;
use mcio_core::exec_sim::{simulate_observed, Exchange, Observe, Pipeline};
use mcio_core::{
    exec_fn, mcio, simulate_adaptive, twophase, AdaptivePolicy, CollectiveConfig, CollectivePlan,
    CollectiveRequest, Extent, FaultOutcome, ProcMemory, Rw, Strategy,
};
use mcio_faults::FaultSpec;
use mcio_pfs::SparseFile;
use proptest::prelude::*;

const MIB: u64 = 1 << 20;

/// Disjoint per-rank extents (one contiguous chunk each) so the written
/// file is exactly the concatenation of rank payloads: any lost or
/// duplicated byte shows up in the comparison.
fn serial_request(ranks: usize, chunk: u64) -> CollectiveRequest {
    CollectiveRequest::new(
        Rw::Write,
        (0..ranks as u64)
            .map(|r| vec![Extent::new(r * chunk, chunk)])
            .collect(),
    )
}

fn written(plan: &CollectivePlan, len: u64) -> Vec<u8> {
    let mut file = SparseFile::new();
    exec_fn::execute_write(plan, &mut file).expect("executed plan delivers its bytes");
    file.read_vec(0, len as usize)
}

fn plan_for(
    strategy: Strategy,
    req: &CollectiveRequest,
    map: &ProcessMap,
    mem: &ProcMemory,
    cfg: &CollectiveConfig,
) -> CollectivePlan {
    match strategy {
        Strategy::TwoPhase => twophase::plan(req, map, mem, cfg),
        Strategy::MemoryConscious => mcio::plan(req, map, mem, cfg),
    }
}

/// One generated chaos event: `(kind, a, b, t)` decoded per kind so a
/// single flat tuple strategy covers the whole DSL.
type RawEvent = (u8, u32, u32, u64);

/// Render a generated event list as fault-DSL text. Windowed events get
/// disjoint windows by construction (slot `i` owns
/// `[i*20ms, i*20ms + len)` with `len < 20ms`), so the generator can
/// never trip the overlapping-`ost_stall` validation — overlap
/// rejection is a *spec authoring* error, not a chaos outcome.
fn render_chaos(seed: u64, events: &[RawEvent], nnodes: usize, agg_node: usize) -> String {
    let mut text = format!("seed {seed}\n");
    for (i, &(kind, a, b, t)) in events.iter().enumerate() {
        let slot = i as u64 * 20_000_000;
        let len = 1 + t % 19_000_000;
        match kind % 5 {
            0 => {
                let tenths = 11 + a % 80;
                text += &format!(
                    "ost_slow({}, {}.{}, {slot}ns..{}ns)\n",
                    a % 4,
                    tenths / 10,
                    tenths % 10,
                    slot + len
                );
            }
            1 => {
                text += &format!("ost_stall({}, {slot}ns..{}ns)\n", a % 4, slot + len);
            }
            2 => {
                text += &format!("req_transient_fail(0.{:02}, {})\n", 1 + a % 40, 1 + t);
            }
            3 => {
                text += &format!(
                    "mem_shock({}, 0.{:02}, {}ns)\n",
                    a as usize % nnodes,
                    5 + b % 90,
                    t % 300_000_000
                );
            }
            _ => {
                text += &format!("agg_crash({agg_node}, {}ns)\n", t % 400_000_000);
            }
        }
    }
    text
}

fn run_adaptive(
    plan: &CollectivePlan,
    map: &ProcessMap,
    spec: &ClusterSpec,
    mem: &ProcMemory,
    fspec: &FaultSpec,
    policy: AdaptivePolicy,
    trace: bool,
) -> FaultOutcome {
    simulate_adaptive(
        plan,
        map,
        spec,
        mem,
        Pipeline::Serial,
        Exchange::Direct,
        fspec,
        policy,
        Observe {
            registry: None,
            trace,
            prof: None,
            ..Observe::default()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any generated fault plan, any policy, either strategy: the run
    /// terminates, the executed plan honors the plan contract, and a
    /// completed run writes exactly the fault-free bytes.
    #[test]
    fn chaos_plans_terminate_with_byte_conserved_output(
        ranks in prop::sample::select(vec![8usize, 16]),
        strategy in prop::sample::select(vec![
            Strategy::TwoPhase, Strategy::MemoryConscious,
        ]),
        policy in prop::sample::select(vec![
            AdaptivePolicy::Off, AdaptivePolicy::Conservative, AdaptivePolicy::Aggressive,
        ]),
        seed in 1u64..u64::MAX,
        events in prop::collection::vec(
            (0u8..5, any::<u32>(), any::<u32>(), any::<u64>()), 1..6),
    ) {
        let chunk = MIB;
        let req = serial_request(ranks, chunk);
        let map = ProcessMap::block_ppn(ranks, 4);
        let mem = ProcMemory::uniform(ranks, chunk);
        let cfg = CollectiveConfig::with_buffer(chunk);
        let cluster = ClusterSpec::small(map.nnodes(), 4);
        let plan = plan_for(strategy, &req, &map, &mem, &cfg);
        let golden = written(&plan, ranks as u64 * chunk);
        let agg_node = map.node_of(plan.groups[0].aggregators[0].rank).0;

        let text = render_chaos(seed, &events, map.nnodes(), agg_node);
        let fspec = FaultSpec::parse(&text).expect("generated chaos spec parses");

        // Terminates by construction of the DES (this call returning IS
        // the termination property); the contract checks come after.
        let out = run_adaptive(&plan, &map, &cluster, &mem, &fspec, policy, false);
        prop_assert!(out.executed_plan.check(&req).is_ok(),
            "chaos-transformed plan violates the plan contract: {:?}",
            out.executed_plan.check(&req));
        if out.completed {
            prop_assert_eq!(written(&out.executed_plan, ranks as u64 * chunk), golden,
                "a completed chaos run must write the fault-free bytes");
        }
    }

    /// Chaos runs replay deterministically under every policy: same
    /// plan, same seed, same trace bytes.
    #[test]
    fn chaos_runs_replay_deterministically(
        policy in prop::sample::select(vec![
            AdaptivePolicy::Conservative, AdaptivePolicy::Aggressive,
        ]),
        seed in 1u64..u64::MAX,
        events in prop::collection::vec(
            (0u8..5, any::<u32>(), any::<u32>(), any::<u64>()), 1..5),
    ) {
        let ranks = 8usize;
        let chunk = MIB;
        let req = serial_request(ranks, chunk);
        let map = ProcessMap::block_ppn(ranks, 4);
        let mem = ProcMemory::uniform(ranks, chunk);
        let cfg = CollectiveConfig::with_buffer(chunk);
        let cluster = ClusterSpec::small(map.nnodes(), 4);
        let plan = mcio::plan(&req, &map, &mem, &cfg);
        let agg_node = map.node_of(plan.groups[0].aggregators[0].rank).0;

        let text = render_chaos(seed, &events, map.nnodes(), agg_node);
        let fspec = FaultSpec::parse(&text).expect("generated chaos spec parses");

        let a = run_adaptive(&plan, &map, &cluster, &mem, &fspec, policy, true);
        let b = run_adaptive(&plan, &map, &cluster, &mem, &fspec, policy, true);
        prop_assert_eq!(a.report.elapsed, b.report.elapsed);
        prop_assert_eq!(a.completed, b.completed);
        prop_assert_eq!(&a.adaptive, &b.adaptive,
            "controller decisions must replay identically");
        prop_assert_eq!(&a.trace, &b.trace, "trace bytes must replay identically");
    }

    /// `AdaptivePolicy::Off` with an empty fault plan takes exactly the
    /// static code path: elapsed time and trace bytes are identical to
    /// `simulate_observed`, for both strategies.
    #[test]
    fn off_policy_empty_plan_matches_observed_byte_for_byte(
        strategy in prop::sample::select(vec![
            Strategy::TwoPhase, Strategy::MemoryConscious,
        ]),
        ranks in prop::sample::select(vec![8usize, 12]),
        pipeline in prop::sample::select(vec![Pipeline::Serial, Pipeline::DoubleBuffered]),
        mem_seed in 0u64..1000,
    ) {
        let chunk = MIB;
        let req = serial_request(ranks, chunk);
        let map = ProcessMap::block_ppn(ranks, 4);
        let mem = ProcMemory::normal(ranks, chunk, 0.3, mem_seed);
        let cfg = CollectiveConfig::with_buffer(chunk);
        let cluster = ClusterSpec::small(map.nnodes(), 4);
        let plan = plan_for(strategy, &req, &map, &mem, &cfg);
        let empty = FaultSpec::parse("seed 1\n").expect("empty spec parses");
        prop_assert!(empty.is_empty());

        let (obs_report, obs_trace) = simulate_observed(
            &plan, &map, &cluster, pipeline, Exchange::Direct,
            Observe { registry: None, trace: true, prof: None, ..Observe::default() },
        );
        let off = simulate_adaptive(
            &plan, &map, &cluster, &mem, pipeline, Exchange::Direct, &empty,
            AdaptivePolicy::Off,
            Observe { registry: None, trace: true, prof: None, ..Observe::default() },
        );
        prop_assert_eq!(off.report.elapsed, obs_report.elapsed,
            "Off + empty plan must not perturb the schedule");
        prop_assert_eq!(off.trace.as_deref(), obs_trace.as_deref(),
            "Off + empty plan must emit byte-identical traces");
        prop_assert!(off.completed);
        prop_assert_eq!(off.adaptive, mcio_core::AdaptiveOutcome::default(),
            "the controller must not have acted");
    }
}
