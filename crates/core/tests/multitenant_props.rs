//! Differential conformance properties of the multi-tenant runner.
//!
//! The multi-tenant layer must be a *conservative extension* of the
//! solo executors:
//!
//! * a single job (offset 0, start 0) run through `run_multitenant` is
//!   byte-identical to `simulate_observed` — same `TimingReport`
//!   (including structured metrics), same trace JSON, for both
//!   strategies and every pipeline/exchange combination;
//! * K jobs on disjoint files each deliver exactly the file bytes
//!   their solo run delivers (tenancy perturbs *time*, never *data*);
//! * a seeded multi-tenant run replays deterministically, trace bytes
//!   included.

use mcio_cluster::spec::ClusterSpec;
use mcio_cluster::ProcessMap;
use mcio_core::exec_sim::{Exchange, Observe, Pipeline};
use mcio_core::{
    exec_fn, mcio, run_multitenant, simulate_observed, twophase, CollectiveConfig, CollectivePlan,
    CollectiveRequest, Extent, ProcMemory, Rw, Strategy, TenantJob,
};
use mcio_des::SimDuration;
use mcio_pfs::SparseFile;
use proptest::prelude::*;

const KIB: u64 = 1024;

/// The access shapes of the differential suite (see `diff_props.rs`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Shape {
    Contiguous,
    Strided,
    Nested,
}

/// Build a write request of `shape` with a per-job byte offset so
/// multiple jobs can target disjoint file regions ("own files": the
/// PFS namespace is flat, so a file is a region of the offset space).
fn build_request(
    shape: Shape,
    nranks: usize,
    bs: u64,
    blocks: usize,
    base: u64,
) -> CollectiveRequest {
    let per_rank: Vec<Vec<Extent>> = (0..nranks as u64)
        .map(|r| match shape {
            Shape::Contiguous => {
                let chunk = bs * blocks as u64;
                vec![Extent::new(base + r * chunk, chunk)]
            }
            Shape::Strided => (0..blocks as u64)
                .map(|b| Extent::new(base + (b * nranks as u64 + r) * bs, bs))
                .collect(),
            Shape::Nested => {
                let inner_span = 2 * bs * blocks as u64;
                (0..blocks as u64)
                    .map(|i| Extent::new(base + r * inner_span + i * 2 * bs, bs))
                    .collect()
            }
        })
        .collect();
    CollectiveRequest::new(Rw::Write, per_rank)
}

fn plan_for(
    strategy: Strategy,
    req: &CollectiveRequest,
    map: &ProcessMap,
    mem: &ProcMemory,
    cfg: &CollectiveConfig,
) -> CollectivePlan {
    match strategy {
        Strategy::TwoPhase => twophase::plan(req, map, mem, cfg),
        Strategy::MemoryConscious => mcio::plan(req, map, mem, cfg),
    }
}

/// Execute a write plan and return the file image over the hull.
fn file_image(plan: &CollectivePlan, req: &CollectiveRequest) -> Vec<u8> {
    let mut file = SparseFile::new();
    exec_fn::execute_write(plan, &mut file).expect("plan executes");
    exec_fn::verify_write(req, &file).expect("written bytes match the oracle");
    let hull = req.hull();
    file.read_vec(0, hull.end() as usize)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// One job in multi-tenant mode ≡ `simulate_observed`, byte for
    /// byte: identical timing report, metrics and trace JSON.
    #[test]
    fn single_job_is_byte_identical_to_solo(
        shape in prop::sample::select(vec![
            Shape::Contiguous, Shape::Strided, Shape::Nested,
        ]),
        strategy in prop::sample::select(vec![
            Strategy::TwoPhase, Strategy::MemoryConscious,
        ]),
        nranks in prop::sample::select(vec![6usize, 8, 12]),
        pipeline in prop::sample::select(vec![Pipeline::Serial, Pipeline::DoubleBuffered]),
        exchange in prop::sample::select(vec![Exchange::Direct, Exchange::TwoLevel]),
        bs in prop::sample::select(vec![16 * KIB, 64 * KIB]),
        uneven in any::<bool>(),
        seed in 0u64..1000,
    ) {
        let req = build_request(shape, nranks, bs, 3, 0);
        let map = ProcessMap::block_ppn(nranks, 4);
        let budget = 4 * bs;
        let mem = if uneven {
            ProcMemory::normal(nranks, budget, 0.35, seed)
        } else {
            ProcMemory::uniform(nranks, budget)
        };
        let cfg = CollectiveConfig::with_buffer(budget);
        let cluster = ClusterSpec::small(map.nnodes(), 4);
        let plan = plan_for(strategy, &req, &map, &mem, &cfg);

        let (solo_report, solo_trace) = simulate_observed(
            &plan, &map, &cluster, pipeline, exchange,
            Observe { registry: None, trace: true, prof: None, ..Observe::default() },
        );
        let mt = run_multitenant(
            &[TenantJob::new("only", plan.clone(), map.clone())
                .pipeline(pipeline)
                .exchange(exchange)],
            &cluster,
            None,
            Observe { registry: None, trace: true, prof: None, ..Observe::default() },
        );

        prop_assert_eq!(mt.jobs.len(), 1);
        prop_assert_eq!(&mt.jobs[0].report, &solo_report,
            "single-job timing must match the solo executor");
        prop_assert_eq!(mt.trace.as_deref(), solo_trace.as_deref(),
            "single-job trace bytes must match the solo executor");
        prop_assert_eq!(mt.makespan, solo_report.elapsed);
        prop_assert!((mt.jobs[0].slowdown - 1.0).abs() < 1e-12,
            "a lone tenant has slowdown 1.0, got {}", mt.jobs[0].slowdown);
        prop_assert_eq!(mt.jobs[0].ost_overlap, 0.0);
    }

    /// K jobs on disjoint files: tenancy shifts time, never bytes —
    /// each job's plan still delivers exactly its solo file image, and
    /// no job gets faster than running alone.
    #[test]
    fn disjoint_file_jobs_reproduce_solo_bytes(
        k in 2usize..5,
        shape in prop::sample::select(vec![
            Shape::Contiguous, Shape::Strided, Shape::Nested,
        ]),
        strategy in prop::sample::select(vec![
            Strategy::TwoPhase, Strategy::MemoryConscious,
        ]),
        stagger_us in prop::sample::select(vec![0u64, 150, 400]),
        seed in 0u64..1000,
    ) {
        let nranks = 8usize;
        let ppn = 2usize;
        let bs = 32 * KIB;
        let nnodes = nranks / ppn;
        let cluster = ClusterSpec::small(k * nnodes, 2);

        let mut jobs = Vec::new();
        let mut solo_images = Vec::new();
        let mut requests = Vec::new();
        for ji in 0..k as u64 {
            // Each job owns a disjoint region of the offset space — its
            // "file" — and its own node partition.
            let base = ji * 64 * 1024 * KIB;
            let req = build_request(shape, nranks, bs, 3, base);
            let map = ProcessMap::block_ppn(nranks, ppn);
            let mem = ProcMemory::normal(nranks, 4 * bs, 0.3, seed + ji);
            let cfg = CollectiveConfig::with_buffer(4 * bs);
            let plan = plan_for(strategy, &req, &map, &mem, &cfg);
            solo_images.push(file_image(&plan, &req));
            jobs.push(
                TenantJob::new(format!("job{ji}"), plan, map)
                    .node_offset(ji as usize * nnodes)
                    .start(SimDuration::from_micros(ji * stagger_us)),
            );
            requests.push(req);
        }

        let mt = run_multitenant(&jobs, &cluster, None,
            Observe { registry: None, trace: false, prof: None, ..Observe::default() });

        prop_assert_eq!(mt.jobs.len(), k);
        for (ji, outcome) in mt.jobs.iter().enumerate() {
            // The bytes a job writes are a property of its plan — the
            // shared machine must not have changed them.
            let image = file_image(&jobs[ji].plan, &requests[ji]);
            prop_assert_eq!(&image, &solo_images[ji],
                "job {} file bytes diverged from its solo run", ji);
            // Sharing a machine can only cost time.
            prop_assert!(outcome.slowdown >= 1.0 - 1e-9,
                "job {} sped up under contention: slowdown {}", ji, outcome.slowdown);
            prop_assert!(outcome.end_ns >= outcome.start_ns);
            prop_assert!((0.0..=1.0).contains(&outcome.ost_overlap));
        }
        prop_assert!(mt.makespan.as_nanos()
            >= mt.jobs.iter().map(|j| j.end_ns).max().unwrap_or(0));
    }

    /// Seeded replay: the same multi-tenant input produces the same
    /// outcome — reports and trace bytes — every time.
    #[test]
    fn multitenant_replay_is_deterministic(
        k in 2usize..4,
        strategy in prop::sample::select(vec![
            Strategy::TwoPhase, Strategy::MemoryConscious,
        ]),
        seed in 0u64..1000,
    ) {
        let nranks = 8usize;
        let ppn = 2usize;
        let bs = 32 * KIB;
        let nnodes = nranks / ppn;
        // Overlapping partitions on purpose: every job shares the same
        // nodes, so contention is maximal and any nondeterminism in the
        // shared lowering would surface.
        let cluster = ClusterSpec::small(nnodes, 2);
        let jobs: Vec<TenantJob> = (0..k as u64)
            .map(|ji| {
                let req = build_request(Shape::Strided, nranks, bs, 3, ji * 1024 * KIB);
                let map = ProcessMap::block_ppn(nranks, ppn);
                let mem = ProcMemory::normal(nranks, 4 * bs, 0.3, seed + ji);
                let cfg = CollectiveConfig::with_buffer(4 * bs);
                let plan = plan_for(strategy, &req, &map, &mem, &cfg);
                TenantJob::new(format!("job{ji}"), plan, map)
                    .start(SimDuration::from_micros(ji * 100))
            })
            .collect();

        let a = run_multitenant(&jobs, &cluster, None,
            Observe { registry: None, trace: true, prof: None, ..Observe::default() });
        let b = run_multitenant(&jobs, &cluster, None,
            Observe { registry: None, trace: true, prof: None, ..Observe::default() });
        prop_assert_eq!(&a.jobs, &b.jobs, "job outcomes must replay identically");
        prop_assert_eq!(a.makespan, b.makespan);
        prop_assert_eq!(&a.trace, &b.trace, "trace bytes must replay identically");
    }
}
