//! Differential conformance properties: the two strategies must agree on
//! *what* ends up in the file (bytes), and the resilient executor with
//! nothing to inject must agree with the plain observed executor on
//! *everything* (timing, metrics, trace bytes).
//!
//! Patterns are randomized over the four access shapes the planners care
//! about — contiguous, strided, nested (two-level strided with holes),
//! and overlapping — so a divergence anywhere in group division, the
//! partition tree, placement, or round scheduling shows up as a byte
//! diff here.

use mcio_cluster::spec::ClusterSpec;
use mcio_cluster::ProcessMap;
use mcio_core::exec_sim::{Exchange, Observe, Pipeline};
use mcio_core::{
    exec_fn, mcio, simulate_faulted, simulate_observed, twophase, CollectiveConfig, CollectivePlan,
    CollectiveRequest, Extent, ProcMemory, Rw, Strategy,
};
use mcio_faults::FaultSpec;
use mcio_pfs::SparseFile;
use proptest::prelude::*;

const KIB: u64 = 1024;

/// The four access shapes of the differential suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Shape {
    /// Rank `r` owns one contiguous chunk at `r * chunk`.
    Contiguous,
    /// Round-robin blocks: rank `r` writes block `b` at
    /// `(b * nranks + r) * bs` — the classic interleaved pattern.
    Strided,
    /// Two-level strided with holes: outer tiles per rank, inner blocks
    /// separated by gaps, so coverage is non-contiguous at both levels.
    Nested,
    /// Rank `r` starts at `r * chunk / 2`: every chunk overlaps half of
    /// each neighbor's. Writers agree byte-for-byte (the payload is a
    /// pure function of the absolute file offset), so the merged file is
    /// still well-defined.
    Overlapping,
}

fn build_request(shape: Shape, nranks: usize, bs: u64, blocks: usize) -> CollectiveRequest {
    let per_rank: Vec<Vec<Extent>> = (0..nranks as u64)
        .map(|r| match shape {
            Shape::Contiguous => {
                let chunk = bs * blocks as u64;
                vec![Extent::new(r * chunk, chunk)]
            }
            Shape::Strided => (0..blocks as u64)
                .map(|b| Extent::new((b * nranks as u64 + r) * bs, bs))
                .collect(),
            Shape::Nested => {
                // Outer tile = every rank's inner run; inner blocks leave
                // a bs-sized hole after each block.
                let inner_span = 2 * bs * blocks as u64;
                let outer_stride = nranks as u64 * inner_span;
                (0..2u64)
                    .flat_map(|o| {
                        (0..blocks as u64).map(move |i| {
                            Extent::new(o * outer_stride + r * inner_span + i * 2 * bs, bs)
                        })
                    })
                    .collect()
            }
            Shape::Overlapping => {
                let chunk = bs * blocks as u64;
                vec![Extent::new(r * chunk / 2, chunk)]
            }
        })
        .collect();
    CollectiveRequest::new(Rw::Write, per_rank)
}

fn plan_for(
    strategy: Strategy,
    req: &CollectiveRequest,
    map: &ProcessMap,
    mem: &ProcMemory,
    cfg: &CollectiveConfig,
) -> CollectivePlan {
    match strategy {
        Strategy::TwoPhase => twophase::plan(req, map, mem, cfg),
        Strategy::MemoryConscious => mcio::plan(req, map, mem, cfg),
    }
}

/// Execute a write plan and return the full file image over the hull.
fn file_image(plan: &CollectivePlan, req: &CollectiveRequest) -> Vec<u8> {
    let mut file = SparseFile::new();
    exec_fn::execute_write(plan, &mut file).expect("plan executes");
    exec_fn::verify_write(req, &file).expect("written bytes match the oracle");
    let hull = req.hull();
    file.read_vec(0, hull.end() as usize)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Two-phase and memory-conscious plans of the same request produce
    /// byte-identical files — over the requested coverage *and* the
    /// holes (no strategy writes a byte nobody asked for).
    #[test]
    fn strategies_agree_on_file_bytes(
        shape in prop::sample::select(vec![
            Shape::Contiguous, Shape::Strided, Shape::Nested, Shape::Overlapping,
        ]),
        nranks in prop::sample::select(vec![6usize, 8, 12]),
        ppn in prop::sample::select(vec![2usize, 4]),
        bs in prop::sample::select(vec![4 * KIB, 16 * KIB, 64 * KIB]),
        blocks in 1usize..5,
        buf_blocks in 1u64..5,
        uneven in any::<bool>(),
        seed in 0u64..1000,
    ) {
        let req = build_request(shape, nranks, bs, blocks);
        let map = ProcessMap::block_ppn(nranks, ppn);
        let budget = bs * buf_blocks;
        let mem = if uneven {
            ProcMemory::normal(nranks, budget, 0.35, seed)
        } else {
            ProcMemory::uniform(nranks, budget)
        };
        let cfg = CollectiveConfig::with_buffer(budget)
            .msg_ind(2 * budget)
            .msg_group(8 * budget)
            .mem_min(0);

        let tp = plan_for(Strategy::TwoPhase, &req, &map, &mem, &cfg);
        let mc = plan_for(Strategy::MemoryConscious, &req, &map, &mem, &cfg);
        prop_assert!(tp.check(&req).is_ok(), "{:?}", tp.check(&req));
        prop_assert!(mc.check(&req).is_ok(), "{:?}", mc.check(&req));
        prop_assert_eq!(
            file_image(&tp, &req),
            file_image(&mc, &req),
            "strategies diverged on shape {:?}", shape
        );
    }

    /// `simulate_faulted` with an **empty** fault plan is observationally
    /// identical to `simulate_observed`: same timing report (including
    /// structured metrics), same trace bytes, no recovery activity.
    #[test]
    fn empty_fault_plan_matches_observed_exactly(
        shape in prop::sample::select(vec![
            Shape::Contiguous, Shape::Strided, Shape::Nested, Shape::Overlapping,
        ]),
        strategy in prop::sample::select(vec![
            Strategy::TwoPhase, Strategy::MemoryConscious,
        ]),
        nranks in prop::sample::select(vec![8usize, 12]),
        pipeline in prop::sample::select(vec![Pipeline::Serial, Pipeline::DoubleBuffered]),
        exchange in prop::sample::select(vec![Exchange::Direct, Exchange::TwoLevel]),
        fault_seed in 0u64..u64::MAX,
    ) {
        let bs = 64 * KIB;
        let req = build_request(shape, nranks, bs, 3);
        let map = ProcessMap::block_ppn(nranks, 4);
        let mem = ProcMemory::uniform(nranks, 4 * bs);
        let cfg = CollectiveConfig::with_buffer(4 * bs);
        let cluster = ClusterSpec::small(map.nnodes(), 4);
        let plan = plan_for(strategy, &req, &map, &mem, &cfg);

        let (report, trace) = simulate_observed(
            &plan, &map, &cluster, pipeline, exchange,
            Observe { registry: None, trace: true, prof: None, ..Observe::default() },
        );
        // The empty spec still carries a seed and retry policy; with no
        // events they must never influence the run.
        let empty = FaultSpec { seed: fault_seed, ..FaultSpec::default() };
        prop_assert!(empty.is_empty());
        let out = simulate_faulted(
            &plan, &map, &cluster, &mem, pipeline, exchange, &empty,
            Observe { registry: None, trace: true, prof: None, ..Observe::default() },
        );

        prop_assert!(out.completed);
        prop_assert_eq!(out.failovers, 0);
        prop_assert_eq!(out.degraded_rounds, 0);
        prop_assert_eq!(out.retries, 0);
        prop_assert_eq!(&out.executed_plan, &plan, "plan must pass through untransformed");
        prop_assert_eq!(&out.report, &report, "timing must match the observed executor");
        prop_assert_eq!(&out.trace, &trace, "trace bytes must match the observed executor");
    }
}
