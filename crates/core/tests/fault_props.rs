//! Property-based tests of the resilient executor: arbitrary budget
//! degradation sequences keep the transformed plan byte-conserving and
//! fully covering, and any seeded fault plan replays deterministically.

use mcio_cluster::spec::ClusterSpec;
use mcio_cluster::ProcessMap;
use mcio_core::exec_sim::{Exchange, Observe, Pipeline};
use mcio_core::{
    exec_fn, mcio, simulate_faulted, CollectiveConfig, CollectivePlan, CollectiveRequest, Extent,
    FaultOutcome, ProcMemory, Rw,
};
use mcio_faults::FaultSpec;
use mcio_pfs::SparseFile;
use proptest::prelude::*;

const MIB: u64 = 1 << 20;

/// Disjoint per-rank extents (one contiguous chunk each) so the written
/// file is exactly the concatenation of rank payloads: any lost or
/// duplicated byte shows up in the comparison.
fn serial_request(ranks: usize, chunk: u64) -> CollectiveRequest {
    CollectiveRequest::new(
        Rw::Write,
        (0..ranks as u64)
            .map(|r| vec![Extent::new(r * chunk, chunk)])
            .collect(),
    )
}

fn written(plan: &CollectivePlan, len: u64) -> Vec<u8> {
    let mut file = SparseFile::new();
    exec_fn::execute_write(plan, &mut file).expect("executed plan delivers its bytes");
    file.read_vec(0, len as usize)
}

fn run_faulted(
    plan: &CollectivePlan,
    map: &ProcessMap,
    spec: &ClusterSpec,
    mem: &ProcMemory,
    fspec: &FaultSpec,
    trace: bool,
) -> FaultOutcome {
    simulate_faulted(
        plan,
        map,
        spec,
        mem,
        Pipeline::Serial,
        Exchange::Direct,
        fspec,
        Observe {
            registry: None,
            trace,
            prof: None,
            ..Observe::default()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any sequence of memory shocks — arbitrary nodes, drop fractions
    /// and times — degrades rounds without breaking the plan contract:
    /// the executed plan still passes `check()` (byte conservation per
    /// I/O op, full leaf coverage, buffer bounds) and writes bytes
    /// identical to the fault-free plan.
    #[test]
    fn degradation_sequences_preserve_bytes_and_coverage(
        ranks in prop::sample::select(vec![8usize, 12, 16]),
        shocks in prop::collection::vec(
            (0usize..4, 1u32..95, 0u64..300_000_000), 1..5),
    ) {
        let chunk = 2 * MIB;
        let req = serial_request(ranks, chunk);
        let map = ProcessMap::block_ppn(ranks, 4);
        let mem = ProcMemory::uniform(ranks, chunk);
        let cfg = CollectiveConfig::with_buffer(chunk);
        let cluster = ClusterSpec::small(map.nnodes(), 4);
        let plan = mcio::plan(&req, &map, &mem, &cfg);
        let golden = written(&plan, ranks as u64 * chunk);

        let mut text = String::from("seed 9\n");
        for (node, drop_pct, at_ns) in &shocks {
            let node = node % map.nnodes();
            text += &format!(
                "mem_shock({node}, 0.{drop_pct:02}, {at_ns}ns)\n");
        }
        let fspec = FaultSpec::parse(&text).expect("generated spec parses");

        let out = run_faulted(&plan, &map, &cluster, &mem, &fspec, false);
        prop_assert!(out.completed, "memory-conscious must absorb memory shocks");
        prop_assert!(out.executed_plan.check(&req).is_ok(),
            "degraded plan violates the plan contract: {:?}",
            out.executed_plan.check(&req));
        prop_assert_eq!(written(&out.executed_plan, ranks as u64 * chunk), golden);
    }

    /// Any seeded fault plan — slow OSTs, transient failures, crashes,
    /// shocks in any combination — replays byte-identically: two runs
    /// with the same seed produce the same trace JSON, the same elapsed
    /// time, and the same output bytes.
    #[test]
    fn seeded_fault_plans_replay_deterministically(
        ranks in prop::sample::select(vec![8usize, 16]),
        seed in 1u64..u64::MAX,
        use_slow in any::<bool>(),
        slow in (0u32..2, 15u32..80, 0u64..100_000_000),
        use_transient in any::<bool>(),
        transient in (1u32..60, 1u64..u64::MAX),
        use_crash in any::<bool>(),
        crash in 0u64..400_000_000,
        use_shock in any::<bool>(),
        shock in (5u32..90, 0u64..200_000_000),
    ) {
        let chunk = MIB;
        let req = serial_request(ranks, chunk);
        let map = ProcessMap::block_ppn(ranks, 4);
        let mem = ProcMemory::uniform(ranks, chunk);
        let cfg = CollectiveConfig::with_buffer(chunk);
        let cluster = ClusterSpec::small(map.nnodes(), 4);
        let plan = mcio::plan(&req, &map, &mem, &cfg);
        let agg_node = map.node_of(plan.groups[0].aggregators[0].rank).0;

        let mut text = format!("seed {seed}\n");
        if use_slow {
            let (ost, tenths, at) = slow;
            text += &format!("ost_slow({ost}, {}.{}, {at}ns..{}ns)\n",
                1 + tenths / 10, tenths % 10, at + 50_000_000);
        }
        if use_transient {
            let (pct, fseed) = transient;
            text += &format!("req_transient_fail(0.{pct:02}, {fseed})\n");
        }
        if use_crash {
            text += &format!("agg_crash({agg_node}, {crash}ns)\n");
        }
        if use_shock {
            let (pct, at) = shock;
            text += &format!("mem_shock({agg_node}, 0.{pct:02}, {at}ns)\n");
        }
        let fspec = FaultSpec::parse(&text).expect("generated spec parses");

        let a = run_faulted(&plan, &map, &cluster, &mem, &fspec, true);
        let b = run_faulted(&plan, &map, &cluster, &mem, &fspec, true);
        prop_assert_eq!(a.report.elapsed, b.report.elapsed);
        prop_assert_eq!(a.completed, b.completed);
        prop_assert_eq!(&a.trace, &b.trace, "identical seeds must replay the same trace");
        prop_assert!(a.trace.is_some());
        if a.completed {
            let total = ranks as u64 * chunk;
            prop_assert_eq!(
                written(&a.executed_plan, total),
                written(&b.executed_plan, total));
        }
    }
}
