//! Activities: units of work flowing through resource stages.
//!
//! An activity models one logical operation in the system — an inter-node
//! message, a file-system request piece, a barrier — as an ordered sequence
//! of [`Stage`]s, each of which occupies one FIFO resource. Dependencies
//! between activities form a DAG; the engine releases an activity once all
//! of its predecessors have completed.

use crate::resource::ResourceId;
use crate::time::{SimDuration, SimTime};

/// Identifier of an activity within a [`crate::Simulation`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ActivityId(pub(crate) usize);

impl ActivityId {
    /// The index of this activity in the simulation's activity table.
    pub fn index(self) -> usize {
        self.0
    }
}

/// One hop of an activity through a resource.
#[derive(Debug, Clone, Copy)]
pub struct Stage {
    /// Resource this stage occupies.
    pub resource: ResourceId,
    /// Bytes pushed through the resource.
    pub bytes: u64,
    /// Fixed setup cost added to the service time.
    pub overhead: SimDuration,
    /// Propagation delay the activity waits out *after* releasing the
    /// resource, without occupying anything (e.g. wire latency).
    pub latency_after: SimDuration,
}

/// Builder for an activity: a label, an optional release time, and a
/// sequence of stages.
#[derive(Debug, Clone)]
pub struct Activity {
    pub(crate) label: String,
    pub(crate) release: SimTime,
    pub(crate) stages: Vec<Stage>,
}

impl Activity {
    /// A new activity with no stages (a pure synchronization point until
    /// stages are added).
    pub fn new(label: impl Into<String>) -> Self {
        Activity {
            label: label.into(),
            release: SimTime::ZERO,
            stages: Vec::new(),
        }
    }

    /// Do not start before `t`, even if all dependencies are satisfied.
    pub fn release_at(mut self, t: SimTime) -> Self {
        self.release = t;
        self
    }

    /// Append a stage occupying `resource` for `overhead + bytes/bw`.
    pub fn stage(mut self, resource: ResourceId, bytes: u64, overhead: SimDuration) -> Self {
        self.stages.push(Stage {
            resource,
            bytes,
            overhead,
            latency_after: SimDuration::ZERO,
        });
        self
    }

    /// Append a stage followed by a propagation delay.
    pub fn stage_with_latency(
        mut self,
        resource: ResourceId,
        bytes: u64,
        overhead: SimDuration,
        latency_after: SimDuration,
    ) -> Self {
        self.stages.push(Stage {
            resource,
            bytes,
            overhead,
            latency_after,
        });
        self
    }

    /// Append a pre-built stage.
    pub fn push_stage(mut self, stage: Stage) -> Self {
        self.stages.push(stage);
        self
    }

    /// Append a pure delay (no resource occupied): models think time or
    /// fixed software overhead that does not contend with anything.
    pub fn delay(mut self, d: SimDuration) -> Self {
        // Modeled as a latency on a phantom zero-byte stage attached to the
        // previous stage if any; otherwise as an adjustment to the release
        // handled by the engine via a dedicated marker stage. To keep the
        // engine uniform we encode it as latency on the *previous* stage,
        // or fold it into the release time when there are no stages yet.
        match self.stages.last_mut() {
            Some(last) => last.latency_after += d,
            None => self.release += d,
        }
        self
    }

    /// The stages of this activity.
    pub fn stages(&self) -> &[Stage] {
        &self.stages
    }

    /// The label given at construction.
    pub fn label(&self) -> &str {
        &self.label
    }
}

/// Engine-internal per-activity state.
#[derive(Debug)]
pub(crate) struct ActivityState {
    pub label: String,
    pub release: SimTime,
    pub stages: Vec<Stage>,
    pub next_stage: usize,
    pub deps_remaining: usize,
    pub dependents: Vec<ActivityId>,
    pub started: Option<SimTime>,
    pub finished: Option<SimTime>,
}

impl ActivityState {
    pub fn from_activity(a: Activity) -> Self {
        ActivityState {
            label: a.label,
            release: a.release,
            stages: a.stages,
            next_stage: 0,
            deps_remaining: 0,
            dependents: Vec::new(),
            started: None,
            finished: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates_stages() {
        let r = ResourceId(0);
        let a = Activity::new("x")
            .stage(r, 10, SimDuration::ZERO)
            .stage_with_latency(
                r,
                20,
                SimDuration::from_nanos(5),
                SimDuration::from_nanos(7),
            );
        assert_eq!(a.stages().len(), 2);
        assert_eq!(a.stages()[1].bytes, 20);
        assert_eq!(a.stages()[1].latency_after, SimDuration::from_nanos(7));
        assert_eq!(a.label(), "x");
    }

    #[test]
    fn delay_with_no_stages_moves_release() {
        let a = Activity::new("d").delay(SimDuration::from_secs(1));
        assert_eq!(a.release, SimTime::ZERO + SimDuration::from_secs(1));
    }

    #[test]
    fn delay_after_stage_becomes_latency() {
        let r = ResourceId(0);
        let a = Activity::new("d")
            .stage(r, 1, SimDuration::ZERO)
            .delay(SimDuration::from_secs(2));
        assert_eq!(a.stages()[0].latency_after, SimDuration::from_secs(2));
    }
}
