//! Small online statistics helpers shared by the simulation crates.

use std::fmt;

/// Welford online accumulator: count, mean, variance, min, max in one pass.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Fold in one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 when fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (0 when empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observation (0 when empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.mean() * self.n as f64
    }

    /// Coefficient of variation: stddev / mean (0 when mean is 0).
    ///
    /// The paper's aggregator-memory *variance* claims are reported with
    /// this normalized measure so that runs at different buffer scales are
    /// comparable.
    pub fn cv(&self) -> f64 {
        let m = self.mean();
        if m == 0.0 {
            0.0
        } else {
            self.stddev() / m
        }
    }

    /// Merge another accumulator into this one (parallel Welford /
    /// Chan et al.).
    ///
    /// The `count == 0` cases are handled explicitly, **before** the
    /// combining formula runs: an empty side carries sentinel extrema
    /// (`min = +inf`, `max = -inf`) and a meaningless `mean = 0`, and
    /// with `n1 + n2` as a divisor the formula would otherwise blend
    /// that zero mean in (or divide 0/0 when both sides are empty).
    /// Merging an empty `other` is a no-op; merging into an empty
    /// `self` is a plain copy; `empty.merge(&empty)` stays empty.
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl fmt::Display for OnlineStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.3} sd={:.3} min={:.3} max={:.3}",
            self.n,
            self.mean(),
            self.stddev(),
            self.min(),
            self.max()
        )
    }
}

impl Extend<f64> for OnlineStats {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for OnlineStats {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = OnlineStats::new();
        s.extend(iter);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_zeroed() {
        let s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
        assert_eq!(s.cv(), 0.0);
    }

    #[test]
    fn basic_moments() {
        let s: OnlineStats = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .into_iter()
            .collect();
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.stddev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert!((s.sum() - 40.0).abs() < 1e-12);
        assert!((s.cv() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn merge_matches_sequential() {
        let all: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0 + 3.0).collect();
        let seq: OnlineStats = all.iter().copied().collect();
        let a: OnlineStats = all[..37].iter().copied().collect();
        let mut b: OnlineStats = all[37..].iter().copied().collect();
        let mut merged = a;
        merged.merge(&b);
        assert_eq!(merged.count(), seq.count());
        assert!((merged.mean() - seq.mean()).abs() < 1e-9);
        assert!((merged.variance() - seq.variance()).abs() < 1e-9);
        assert_eq!(merged.min(), seq.min());
        assert_eq!(merged.max(), seq.max());
        // Merging an empty accumulator is a no-op.
        let before = merged;
        b = OnlineStats::new();
        merged.merge(&b);
        assert_eq!(merged, before);
    }

    #[test]
    fn merge_into_empty_copies() {
        let a: OnlineStats = [1.0, 2.0].into_iter().collect();
        let mut e = OnlineStats::new();
        e.merge(&a);
        assert_eq!(e, a);
    }

    #[test]
    fn merge_two_empties_stays_empty() {
        let mut a = OnlineStats::new();
        a.merge(&OnlineStats::new());
        assert_eq!(a.count(), 0);
        assert_eq!(a.mean(), 0.0);
        assert_eq!(a.variance(), 0.0);
        // Sentinel extrema survive untouched so later pushes still work.
        a.push(5.0);
        assert_eq!(a.min(), 5.0);
        assert_eq!(a.max(), 5.0);
    }

    #[test]
    fn merge_singletons() {
        // singleton ⊕ singleton == two pushes.
        let a: OnlineStats = [2.0].into_iter().collect();
        let b: OnlineStats = [4.0].into_iter().collect();
        let mut merged = a;
        merged.merge(&b);
        let seq: OnlineStats = [2.0, 4.0].into_iter().collect();
        assert_eq!(merged.count(), 2);
        assert!((merged.mean() - seq.mean()).abs() < 1e-12);
        assert!((merged.variance() - seq.variance()).abs() < 1e-12);
        assert_eq!(merged.min(), 2.0);
        assert_eq!(merged.max(), 4.0);

        // singleton ⊕ empty and empty ⊕ singleton both equal the singleton.
        let mut left = a;
        left.merge(&OnlineStats::new());
        assert_eq!(left, a);
        let mut right = OnlineStats::new();
        right.merge(&a);
        assert_eq!(right, a);
        // The copied-in singleton keeps accumulating correctly.
        right.push(6.0);
        assert_eq!(right.count(), 2);
        assert!((right.mean() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn display_format() {
        let s: OnlineStats = [1.0].into_iter().collect();
        assert_eq!(
            format!("{s}"),
            "n=1 mean=1.000 sd=0.000 min=1.000 max=1.000"
        );
    }
}
