//! FIFO bandwidth resources.
//!
//! A resource models a single server with a fixed bandwidth: a NIC port, a
//! node's off-chip memory bus, an object storage target. Jobs queue in FIFO
//! order and occupy the server for `overhead + bytes / bandwidth`. This
//! store-and-forward service discipline is what produces contention in the
//! simulation: two transfers crossing the same memory bus serialize, exactly
//! the off-chip bandwidth pressure the paper is about.

use crate::activity::ActivityId;
use crate::time::{SimDuration, SimTime};
use mcio_obs::Histogram;
use std::collections::VecDeque;

/// Identifier of a resource within a [`crate::Simulation`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ResourceId(pub(crate) usize);

impl ResourceId {
    /// The index of this resource in the simulation's resource table.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Service rate of a resource, in bytes per second.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bandwidth(f64);

impl Bandwidth {
    /// A bandwidth of `bps` bytes per second. Non-finite or non-positive
    /// values are treated as infinite bandwidth (pure-overhead resource).
    pub fn bytes_per_sec(bps: f64) -> Self {
        if bps.is_finite() && bps > 0.0 {
            Bandwidth(bps)
        } else {
            Bandwidth(f64::INFINITY)
        }
    }

    /// Convenience constructor: mebibytes per second.
    pub fn mib_per_sec(mibps: f64) -> Self {
        Self::bytes_per_sec(mibps * 1024.0 * 1024.0)
    }

    /// Convenience constructor: gibibytes per second.
    pub fn gib_per_sec(gibps: f64) -> Self {
        Self::bytes_per_sec(gibps * 1024.0 * 1024.0 * 1024.0)
    }

    /// Infinite bandwidth: jobs cost only their fixed overhead.
    pub fn infinite() -> Self {
        Bandwidth(f64::INFINITY)
    }

    /// Bytes per second as a float (may be infinite).
    pub fn as_bytes_per_sec(self) -> f64 {
        self.0
    }

    /// Time to push `bytes` through this resource, excluding overhead.
    pub fn transfer_time(self, bytes: u64) -> SimDuration {
        if self.0.is_infinite() || bytes == 0 {
            SimDuration::ZERO
        } else {
            SimDuration::from_secs_f64(bytes as f64 / self.0)
        }
    }
}

/// A time window during which a resource serves at a fraction of its
/// nominal rate — the fault-injection hook. `rate` is the progress
/// multiplier: `0.5` means half speed, `0.0` a full stall. Outside all
/// windows the resource serves at rate 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceWindow {
    /// Window start (inclusive).
    pub start: SimTime,
    /// Window end (exclusive).
    pub end: SimTime,
    /// Progress multiplier in `[0, 1]` while the window is active.
    pub rate: f64,
}

/// One queued unit of work at a resource: a specific stage of an activity.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Job {
    pub activity: ActivityId,
    pub bytes: u64,
    pub overhead: SimDuration,
}

/// A FIFO bandwidth server with `capacity` parallel service slots
/// (capacity 1 = the classic single server; an OST with several disk
/// channels or server threads uses more).
#[derive(Debug)]
pub struct Resource {
    name: String,
    bandwidth: Bandwidth,
    capacity: usize,
    /// Waiting jobs, each with the time it joined the queue.
    queue: VecDeque<(Job, SimTime)>,
    /// Jobs currently in service (≤ capacity).
    in_service: usize,
    // --- accounting ---
    busy_time: SimDuration,
    bytes_served: u64,
    jobs_served: u64,
    max_queue_len: usize,
    /// Per-job queueing delay (ns); immediate starts record 0.
    wait_hist: Histogram,
    /// Injected service perturbations, sorted by start, non-overlapping.
    windows: Vec<ServiceWindow>,
}

impl Resource {
    #[cfg(test)]
    pub(crate) fn new(name: impl Into<String>, bandwidth: Bandwidth) -> Self {
        Self::with_capacity(name, bandwidth, 1)
    }

    pub(crate) fn with_capacity(
        name: impl Into<String>,
        bandwidth: Bandwidth,
        capacity: usize,
    ) -> Self {
        assert!(capacity > 0, "resource needs at least one service slot");
        Resource {
            name: name.into(),
            bandwidth,
            capacity,
            queue: VecDeque::new(),
            in_service: 0,
            busy_time: SimDuration::ZERO,
            bytes_served: 0,
            jobs_served: 0,
            max_queue_len: 0,
            wait_hist: Histogram::new(),
            windows: Vec::new(),
        }
    }

    /// Install service perturbation windows (fault injection). Windows
    /// are kept sorted by start; overlapping windows apply in that order
    /// (each segment of time is governed by the first window covering
    /// it). Replaces any previously installed set.
    pub(crate) fn set_service_windows(&mut self, mut windows: Vec<ServiceWindow>) {
        windows.retain(|w| w.end > w.start);
        windows.sort_by_key(|w| (w.start, w.end));
        self.windows = windows;
    }

    /// Number of parallel service slots.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Human-readable name, e.g. `"node3.membus"`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The configured service bandwidth.
    pub fn bandwidth(&self) -> Bandwidth {
        self.bandwidth
    }

    /// Service time for a job: `overhead + bytes / bandwidth`.
    pub fn service_time(&self, bytes: u64, overhead: SimDuration) -> SimDuration {
        overhead + self.bandwidth.transfer_time(bytes)
    }

    /// Enqueue a job. If a service slot is free the job starts
    /// immediately and its completion time is returned; otherwise it
    /// waits in FIFO order.
    pub(crate) fn enqueue(&mut self, now: SimTime, job: Job) -> Option<SimTime> {
        if self.in_service < self.capacity {
            self.wait_hist.observe(0);
            Some(self.start(now, job))
        } else {
            self.queue.push_back((job, now));
            self.max_queue_len = self.max_queue_len.max(self.queue.len());
            None
        }
    }

    /// Called when an in-service job completes. Returns the next job and
    /// its completion time, if one was waiting.
    pub(crate) fn complete_current(&mut self, now: SimTime) -> Option<(Job, SimTime)> {
        debug_assert!(self.in_service > 0, "resource was not busy");
        self.in_service -= 1;
        let (job, enqueued) = self.queue.pop_front()?;
        self.wait_hist
            .observe(now.saturating_since(enqueued).as_nanos());
        let done = self.start(now, job);
        Some((job, done))
    }

    fn start(&mut self, now: SimTime, job: Job) -> SimTime {
        let nominal = self.service_time(job.bytes, job.overhead);
        let done = if self.windows.is_empty() {
            now + nominal
        } else {
            self.perturbed_done(now, nominal)
        };
        self.in_service += 1;
        // Busy time is the span the slot is actually occupied, so
        // utilization reflects the injected slowdown.
        self.busy_time += done.saturating_since(now);
        self.bytes_served += job.bytes;
        self.jobs_served += 1;
        done
    }

    /// Completion time of a job starting at `now` whose nominal service
    /// requirement is `nominal`, integrating progress piecewise across
    /// the perturbation windows (rate 1 between and after them).
    fn perturbed_done(&self, now: SimTime, nominal: SimDuration) -> SimTime {
        let mut t = now.as_nanos();
        let mut remaining = nominal.as_nanos() as f64;
        for w in &self.windows {
            let (ws, we) = (w.start.as_nanos(), w.end.as_nanos());
            if we <= t {
                continue;
            }
            // Full-rate segment before the window opens.
            if ws > t {
                let gap = (ws - t) as f64;
                if remaining <= gap {
                    return SimTime::from_nanos(t.saturating_add(remaining.ceil() as u64));
                }
                remaining -= gap;
                t = ws;
            }
            // Inside the window: progress at `rate`.
            let rate = w.rate.clamp(0.0, 1.0);
            let span = (we - t) as f64;
            if rate > 0.0 && remaining <= span * rate {
                return SimTime::from_nanos(t.saturating_add((remaining / rate).ceil() as u64));
            }
            remaining -= span * rate;
            t = we;
        }
        SimTime::from_nanos(t.saturating_add(remaining.ceil() as u64))
    }

    pub(crate) fn usage(&self) -> ResourceUsage {
        ResourceUsage {
            name: self.name.clone(),
            busy_time: self.busy_time,
            bytes_served: self.bytes_served,
            jobs_served: self.jobs_served,
            max_queue_len: self.max_queue_len,
            wait_hist: self.wait_hist.clone(),
        }
    }
}

/// Post-run accounting for one resource.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResourceUsage {
    /// Name the resource was registered with.
    pub name: String,
    /// Total service time delivered (may exceed the makespan when the
    /// resource has multiple service slots).
    pub busy_time: SimDuration,
    /// Total bytes pushed through the server.
    pub bytes_served: u64,
    /// Number of jobs served.
    pub jobs_served: u64,
    /// High-water mark of the waiting queue (excludes the job in service).
    pub max_queue_len: usize,
    /// Distribution of per-job queueing delay, in nanoseconds. Jobs that
    /// found a free slot record a zero wait, so `wait_hist.count()`
    /// equals `jobs_served` after a completed run.
    pub wait_hist: Histogram,
}

impl ResourceUsage {
    /// Fraction of the makespan this resource was busy, in `[0, 1]`
    /// (assuming `makespan` covers the whole run).
    pub fn utilization(&self, makespan: SimDuration) -> f64 {
        if makespan.is_zero() {
            0.0
        } else {
            self.busy_time.as_secs_f64() / makespan.as_secs_f64()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(bytes: u64) -> Job {
        Job {
            activity: ActivityId(0),
            bytes,
            overhead: SimDuration::ZERO,
        }
    }

    #[test]
    fn bandwidth_transfer_time() {
        let bw = Bandwidth::bytes_per_sec(1000.0);
        assert_eq!(bw.transfer_time(2000), SimDuration::from_secs(2));
        assert_eq!(bw.transfer_time(0), SimDuration::ZERO);
        assert_eq!(
            Bandwidth::infinite().transfer_time(1 << 40),
            SimDuration::ZERO
        );
    }

    #[test]
    fn degenerate_bandwidth_becomes_infinite() {
        assert_eq!(
            Bandwidth::bytes_per_sec(0.0).transfer_time(100),
            SimDuration::ZERO
        );
        assert_eq!(
            Bandwidth::bytes_per_sec(-5.0).transfer_time(100),
            SimDuration::ZERO
        );
        assert_eq!(
            Bandwidth::bytes_per_sec(f64::NAN).transfer_time(100),
            SimDuration::ZERO
        );
    }

    #[test]
    fn mib_gib_constructors() {
        assert_eq!(
            Bandwidth::mib_per_sec(1.0).as_bytes_per_sec(),
            1024.0 * 1024.0
        );
        assert_eq!(
            Bandwidth::gib_per_sec(1.0).as_bytes_per_sec(),
            1024.0 * 1024.0 * 1024.0
        );
    }

    #[test]
    fn fifo_queueing() {
        let mut r = Resource::new("r", Bandwidth::bytes_per_sec(100.0));
        let t0 = SimTime::ZERO;
        // First job starts immediately.
        let done = r.enqueue(t0, job(100)).expect("idle server starts job");
        assert_eq!(done, t0 + SimDuration::from_secs(1));
        // Second queues.
        assert!(r.enqueue(t0, job(200)).is_none());
        assert_eq!(r.usage().max_queue_len, 1);
        // Completion pops the queue.
        let (next, next_done) = r.complete_current(done).expect("queued job");
        assert_eq!(next.bytes, 200);
        assert_eq!(next_done, done + SimDuration::from_secs(2));
        assert!(r.complete_current(next_done).is_none());
        let u = r.usage();
        assert_eq!(u.jobs_served, 2);
        assert_eq!(u.bytes_served, 300);
        assert_eq!(u.busy_time, SimDuration::from_secs(3));
    }

    #[test]
    fn wait_times_recorded_per_job() {
        let mut r = Resource::new("r", Bandwidth::bytes_per_sec(100.0));
        let t0 = SimTime::ZERO;
        let done = r.enqueue(t0, job(100)).unwrap();
        assert!(r.enqueue(t0, job(100)).is_none());
        r.complete_current(done);
        let u = r.usage();
        // One immediate start (0 ns wait), one that waited a full second.
        assert_eq!(u.wait_hist.count(), u.jobs_served);
        assert_eq!(u.wait_hist.min(), Some(0));
        assert_eq!(u.wait_hist.max(), Some(1_000_000_000));
    }

    #[test]
    fn overhead_adds_to_service() {
        let r = Resource::new("r", Bandwidth::bytes_per_sec(100.0));
        assert_eq!(
            r.service_time(100, SimDuration::from_millis(500)),
            SimDuration::from_millis(1500)
        );
    }

    #[test]
    fn slow_window_stretches_service() {
        // 100 B/s server, 100-byte job ⇒ nominally 1 s. A half-rate
        // window covering the whole job doubles it.
        let mut r = Resource::new("r", Bandwidth::bytes_per_sec(100.0));
        r.set_service_windows(vec![ServiceWindow {
            start: SimTime::ZERO,
            end: SimTime::from_nanos(u64::MAX),
            rate: 0.5,
        }]);
        let done = r.enqueue(SimTime::ZERO, job(100)).unwrap();
        assert_eq!(done, SimTime::ZERO + SimDuration::from_secs(2));
        assert_eq!(r.usage().busy_time, SimDuration::from_secs(2));
    }

    #[test]
    fn stall_window_freezes_progress() {
        // Job starts at t=0, stall covers [0.5 s, 2.5 s): the first half
        // second does half the work, then nothing until 2.5 s, then the
        // remaining half second ⇒ done at 3 s.
        let mut r = Resource::new("r", Bandwidth::bytes_per_sec(100.0));
        r.set_service_windows(vec![ServiceWindow {
            start: SimTime::from_nanos(500_000_000),
            end: SimTime::from_nanos(2_500_000_000),
            rate: 0.0,
        }]);
        let done = r.enqueue(SimTime::ZERO, job(100)).unwrap();
        assert_eq!(done, SimTime::from_nanos(3_000_000_000));
    }

    #[test]
    fn job_outside_windows_is_unperturbed() {
        let mut r = Resource::new("r", Bandwidth::bytes_per_sec(100.0));
        r.set_service_windows(vec![ServiceWindow {
            start: SimTime::from_nanos(10),
            end: SimTime::from_nanos(20),
            rate: 0.0,
        }]);
        // Starting after the window ends: exact nominal completion.
        let t = SimTime::from_nanos(1_000_000_000);
        let done = r.enqueue(t, job(100)).unwrap();
        assert_eq!(done, t + SimDuration::from_secs(1));
    }

    #[test]
    fn empty_and_reversed_windows_are_dropped() {
        let mut r = Resource::new("r", Bandwidth::bytes_per_sec(100.0));
        r.set_service_windows(vec![ServiceWindow {
            start: SimTime::from_nanos(20),
            end: SimTime::from_nanos(20),
            rate: 0.0,
        }]);
        let done = r.enqueue(SimTime::ZERO, job(100)).unwrap();
        assert_eq!(done, SimTime::ZERO + SimDuration::from_secs(1));
    }

    #[test]
    fn utilization() {
        let u = ResourceUsage {
            name: "r".into(),
            busy_time: SimDuration::from_secs(1),
            bytes_served: 0,
            jobs_served: 0,
            max_queue_len: 0,
            wait_hist: Histogram::new(),
        };
        assert!((u.utilization(SimDuration::from_secs(4)) - 0.25).abs() < 1e-12);
        assert_eq!(u.utilization(SimDuration::ZERO), 0.0);
    }
}
