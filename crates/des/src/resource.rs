//! Bandwidth resources: FIFO queues and amortized fair sharing.
//!
//! A resource models a single server with a fixed bandwidth: a NIC port, a
//! node's off-chip memory bus, an object storage target. Under the classic
//! [`SharePolicy::Fifo`] discipline jobs queue in FIFO order and occupy the
//! server for `overhead + bytes / bandwidth`. This store-and-forward service
//! discipline is what produces contention in the simulation: two transfers
//! crossing the same memory bus serialize, exactly the off-chip bandwidth
//! pressure the paper is about.
//!
//! [`SharePolicy::FairShare`] replaces the queue with an amortized
//! processor-sharing throughput model (the shape of dslab's `fair_fast`):
//! every admitted transfer progresses simultaneously, each receiving
//! `min(n, capacity) / n` of a service slot, and finish times are
//! recomputed only on arrival/departure — O(log n) heap work per event
//! instead of one queued event per waiting request. Demand is measured in
//! nanoseconds of *nominal service time* (`overhead + bytes / bandwidth`),
//! so pure-overhead resources (infinite-bandwidth OSTs) contend under fair
//! sharing exactly like bandwidth-bound links. When the active set drains
//! the virtual clock resets, which keeps every uncontended admission's
//! arithmetic — and therefore its completion instant — bit-identical to
//! the FIFO engine's.

use crate::activity::ActivityId;
use crate::time::{SimDuration, SimTime};
use mcio_obs::Histogram;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Identifier of a resource within a [`crate::Simulation`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ResourceId(pub(crate) usize);

impl ResourceId {
    /// The index of this resource in the simulation's resource table.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Service discipline of a resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SharePolicy {
    /// Store-and-forward FIFO: `capacity` slots, each serving one job at
    /// the full bandwidth; excess jobs wait in arrival order.
    #[default]
    Fifo,
    /// Amortized fair sharing (processor sharing): all admitted
    /// transfers progress concurrently, each at
    /// `min(n, capacity) / n` of a full-rate slot; finish times are
    /// recomputed only on arrival/departure.
    FairShare,
}

impl SharePolicy {
    /// Stable lowercase label (`fifo` / `fair`), for CLI flags and docs.
    pub fn label(self) -> &'static str {
        match self {
            SharePolicy::Fifo => "fifo",
            SharePolicy::FairShare => "fair",
        }
    }

    /// Parse a CLI label; accepts `fifo`, `fair`, and `fair-share`.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "fifo" => Some(SharePolicy::Fifo),
            "fair" | "fair-share" | "fairshare" => Some(SharePolicy::FairShare),
            _ => None,
        }
    }
}

/// Service rate of a resource, in bytes per second.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bandwidth(f64);

impl Bandwidth {
    /// A bandwidth of `bps` bytes per second. Non-finite or non-positive
    /// values are treated as infinite bandwidth (pure-overhead resource).
    pub fn bytes_per_sec(bps: f64) -> Self {
        if bps.is_finite() && bps > 0.0 {
            Bandwidth(bps)
        } else {
            Bandwidth(f64::INFINITY)
        }
    }

    /// Convenience constructor: mebibytes per second.
    pub fn mib_per_sec(mibps: f64) -> Self {
        Self::bytes_per_sec(mibps * 1024.0 * 1024.0)
    }

    /// Convenience constructor: gibibytes per second.
    pub fn gib_per_sec(gibps: f64) -> Self {
        Self::bytes_per_sec(gibps * 1024.0 * 1024.0 * 1024.0)
    }

    /// Infinite bandwidth: jobs cost only their fixed overhead.
    pub fn infinite() -> Self {
        Bandwidth(f64::INFINITY)
    }

    /// Bytes per second as a float (may be infinite).
    pub fn as_bytes_per_sec(self) -> f64 {
        self.0
    }

    /// Time to push `bytes` through this resource, excluding overhead.
    pub fn transfer_time(self, bytes: u64) -> SimDuration {
        if self.0.is_infinite() || bytes == 0 {
            SimDuration::ZERO
        } else {
            SimDuration::from_secs_f64(bytes as f64 / self.0)
        }
    }
}

/// A time window during which a resource serves at a fraction of its
/// nominal rate — the fault-injection hook. `rate` is the progress
/// multiplier: `0.5` means half speed, `0.0` a full stall. Outside all
/// windows the resource serves at rate 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceWindow {
    /// Window start (inclusive).
    pub start: SimTime,
    /// Window end (exclusive).
    pub end: SimTime,
    /// Progress multiplier in `[0, 1]` while the window is active.
    pub rate: f64,
}

/// One queued unit of work at a resource: a specific stage of an activity.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Job {
    pub activity: ActivityId,
    pub bytes: u64,
    pub overhead: SimDuration,
}

/// One transfer in a fair-share resource's active set.
#[derive(Debug, Clone, Copy)]
struct FairEntry {
    /// Virtual finish time: the resource's virtual clock value at which
    /// this transfer's demand is fully served, in nanoseconds of
    /// per-transfer service progress.
    finish_v: f64,
    /// Admission sequence within this resource — the deterministic
    /// tiebreak for equal virtual finish times.
    seq: u64,
    job: Job,
    /// When the transfer was admitted (trace span start).
    admitted: SimTime,
    /// Index into the engine's trace vector to backpatch the span end
    /// at completion, when tracing is enabled.
    trace_slot: Option<usize>,
}

impl PartialEq for FairEntry {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}
impl Eq for FairEntry {}
impl PartialOrd for FairEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for FairEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.finish_v
            .total_cmp(&other.finish_v)
            .then(self.seq.cmp(&other.seq))
    }
}

/// Fair-sharing state of a resource (present only under
/// [`SharePolicy::FairShare`]).
#[derive(Debug, Default)]
struct FairState {
    /// Active transfers keyed by virtual finish time (min-heap).
    heap: BinaryHeap<Reverse<FairEntry>>,
    /// The resource's virtual clock: nanoseconds of service progress
    /// each active transfer has accumulated. Resets to 0 whenever the
    /// active set drains, so uncontended admissions stay in exact
    /// (integer-representable) f64 territory.
    vtime: f64,
    /// Simulated instant the virtual clock was last advanced to.
    last_t: SimTime,
    /// Admission counter (deterministic heap tiebreak).
    next_seq: u64,
    /// Engine handle `(event index, generation)` of the currently
    /// scheduled next-completion event, if any.
    pending: Option<(usize, u64)>,
}

/// A bandwidth server with `capacity` parallel service slots
/// (capacity 1 = the classic single server; an OST with several disk
/// channels or server threads uses more), serving under a
/// [`SharePolicy`].
#[derive(Debug)]
pub struct Resource {
    name: String,
    bandwidth: Bandwidth,
    capacity: usize,
    policy: SharePolicy,
    /// Waiting jobs, each with the time it joined the queue (FIFO only).
    queue: VecDeque<(Job, SimTime)>,
    /// Jobs currently in service (≤ capacity; FIFO only).
    in_service: usize,
    /// Fair-sharing state (FairShare only).
    fair: FairState,
    // --- accounting ---
    busy_time: SimDuration,
    bytes_served: u64,
    jobs_served: u64,
    max_queue_len: usize,
    /// High-water mark of simultaneously in-service (FIFO) or active
    /// (fair-share) transfers.
    max_active: usize,
    /// Per-job queueing delay (ns); immediate starts record 0.
    wait_hist: Histogram,
    /// Injected service perturbations, sorted by start, non-overlapping.
    windows: Vec<ServiceWindow>,
}

impl Resource {
    #[cfg(test)]
    pub(crate) fn new(name: impl Into<String>, bandwidth: Bandwidth) -> Self {
        Self::with_policy(name, bandwidth, 1, SharePolicy::Fifo)
    }

    pub(crate) fn with_policy(
        name: impl Into<String>,
        bandwidth: Bandwidth,
        capacity: usize,
        policy: SharePolicy,
    ) -> Self {
        assert!(capacity > 0, "resource needs at least one service slot");
        Resource {
            name: name.into(),
            bandwidth,
            capacity,
            policy,
            queue: VecDeque::new(),
            in_service: 0,
            fair: FairState::default(),
            busy_time: SimDuration::ZERO,
            bytes_served: 0,
            jobs_served: 0,
            max_queue_len: 0,
            max_active: 0,
            wait_hist: Histogram::new(),
            windows: Vec::new(),
        }
    }

    /// Install service perturbation windows (fault injection). Windows
    /// are kept sorted by start; overlapping windows apply in that order
    /// (each segment of time is governed by the first window covering
    /// it). Replaces any previously installed set.
    pub(crate) fn set_service_windows(&mut self, mut windows: Vec<ServiceWindow>) {
        windows.retain(|w| w.end > w.start);
        windows.sort_by_key(|w| (w.start, w.end));
        self.windows = windows;
    }

    /// Number of parallel service slots.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Human-readable name, e.g. `"node3.membus"`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The configured service bandwidth.
    pub fn bandwidth(&self) -> Bandwidth {
        self.bandwidth
    }

    /// The service discipline this resource runs under.
    pub fn policy(&self) -> SharePolicy {
        self.policy
    }

    /// Service time for a job: `overhead + bytes / bandwidth`.
    pub fn service_time(&self, bytes: u64, overhead: SimDuration) -> SimDuration {
        overhead + self.bandwidth.transfer_time(bytes)
    }

    // ----- FIFO path -----

    /// Enqueue a job. If a service slot is free the job starts
    /// immediately and its completion time is returned; otherwise it
    /// waits in FIFO order.
    pub(crate) fn enqueue(&mut self, now: SimTime, job: Job) -> Option<SimTime> {
        debug_assert_eq!(self.policy, SharePolicy::Fifo);
        if self.in_service < self.capacity {
            self.wait_hist.observe(0);
            Some(self.start(now, job))
        } else {
            self.queue.push_back((job, now));
            self.max_queue_len = self.max_queue_len.max(self.queue.len());
            None
        }
    }

    /// Called when an in-service job completes. Returns the next job and
    /// its completion time, if one was waiting.
    pub(crate) fn complete_current(&mut self, now: SimTime) -> Option<(Job, SimTime)> {
        debug_assert!(self.in_service > 0, "resource was not busy");
        self.in_service -= 1;
        let (job, enqueued) = self.queue.pop_front()?;
        self.wait_hist
            .observe(now.saturating_since(enqueued).as_nanos());
        let done = self.start(now, job);
        Some((job, done))
    }

    fn start(&mut self, now: SimTime, job: Job) -> SimTime {
        let nominal = self.service_time(job.bytes, job.overhead);
        let done = if self.windows.is_empty() {
            now + nominal
        } else {
            self.perturbed_done(now, nominal)
        };
        self.in_service += 1;
        self.max_active = self.max_active.max(self.in_service);
        // Busy time is the span the slot is actually occupied, so
        // utilization reflects the injected slowdown.
        self.busy_time += done.saturating_since(now);
        self.bytes_served += job.bytes;
        self.jobs_served += 1;
        done
    }

    /// Completion time of a job starting at `now` whose nominal service
    /// requirement is `nominal`, integrating progress piecewise across
    /// the perturbation windows (rate 1 between and after them).
    fn perturbed_done(&self, now: SimTime, nominal: SimDuration) -> SimTime {
        self.integrate_done(now, nominal.as_nanos() as f64, 1.0)
    }

    /// Earliest instant at which `remaining` nanoseconds of service
    /// progress accumulate starting from `now`, when progress flows at
    /// `share` of the nominal rate (times the active perturbation
    /// window's multiplier). `share = 1.0` reproduces the FIFO engine's
    /// arithmetic bit for bit. An empty demand completes at `now`
    /// regardless of windows: zero work needs zero time, even inside a
    /// full stall.
    fn integrate_done(&self, now: SimTime, mut remaining: f64, share: f64) -> SimTime {
        let mut t = now.as_nanos();
        if remaining <= 0.0 {
            return SimTime::from_nanos(t);
        }
        for w in &self.windows {
            let (ws, we) = (w.start.as_nanos(), w.end.as_nanos());
            if we <= t {
                continue;
            }
            // Full-rate segment before the window opens.
            if ws > t {
                let gap = (ws - t) as f64 * share;
                if remaining <= gap {
                    return SimTime::from_nanos(
                        t.saturating_add((remaining / share).ceil() as u64),
                    );
                }
                remaining -= gap;
                t = ws;
                if remaining <= 0.0 {
                    return SimTime::from_nanos(t);
                }
            }
            // Inside the window: progress at `rate`.
            let rate = w.rate.clamp(0.0, 1.0) * share;
            let span = (we - t) as f64;
            if rate > 0.0 && remaining <= span * rate {
                return SimTime::from_nanos(t.saturating_add((remaining / rate).ceil() as u64));
            }
            remaining -= span * rate;
            t = we;
            if remaining <= 0.0 {
                return SimTime::from_nanos(t);
            }
        }
        SimTime::from_nanos(t.saturating_add((remaining / share).ceil() as u64))
    }

    /// Service progress (in nanoseconds of per-transfer progress) that
    /// accumulates over `[t0, t1)` at `share` of the nominal rate,
    /// walking the perturbation windows exactly like
    /// [`Resource::integrate_done`].
    fn progress_between(&self, t0: SimTime, t1: SimTime, share: f64) -> f64 {
        let (mut t, end) = (t0.as_nanos(), t1.as_nanos());
        if end <= t {
            return 0.0;
        }
        let mut acc = 0.0;
        for w in &self.windows {
            let (ws, we) = (w.start.as_nanos(), w.end.as_nanos());
            if we <= t {
                continue;
            }
            if ws > t {
                let gap_end = ws.min(end);
                acc += (gap_end - t) as f64 * share;
                t = gap_end;
                if t >= end {
                    return acc;
                }
            }
            let seg_end = we.min(end);
            acc += (seg_end - t) as f64 * (w.rate.clamp(0.0, 1.0) * share);
            t = seg_end;
            if t >= end {
                return acc;
            }
        }
        acc + (end - t) as f64 * share
    }

    // ----- fair-share path -----

    /// Per-transfer share of a full-rate slot with `n` active transfers.
    fn fair_share(&self, n: usize) -> f64 {
        debug_assert!(n > 0);
        n.min(self.capacity) as f64 / n as f64
    }

    /// Advance the virtual clock (and the busy-time integral) to `now`.
    /// The active-set size is constant between engine events, so the
    /// integral is piecewise over the perturbation windows only.
    fn fair_advance(&mut self, now: SimTime) {
        if now <= self.fair.last_t {
            return;
        }
        let n = self.fair.heap.len();
        if n > 0 {
            let slots = n.min(self.capacity) as u64;
            let span = now.saturating_since(self.fair.last_t).as_nanos();
            self.busy_time += SimDuration::from_nanos(span.saturating_mul(slots));
            let share = self.fair_share(n);
            self.fair.vtime += self.progress_between(self.fair.last_t, now, share);
        }
        self.fair.last_t = now;
    }

    /// Admit a transfer into the fair-share active set at `now`.
    /// The caller must reschedule the resource's next-completion event
    /// afterwards (admission changes every active transfer's rate).
    pub(crate) fn fair_arrive(&mut self, now: SimTime, job: Job, trace_slot: Option<usize>) {
        debug_assert_eq!(self.policy, SharePolicy::FairShare);
        self.fair_advance(now);
        if self.fair.heap.is_empty() {
            // Empty set: reset the virtual clock so the admission below
            // computes `finish_v = demand` exactly — the uncontended
            // completion arithmetic then matches FIFO bit for bit, and
            // f64 error cannot accumulate across drained periods.
            self.fair.vtime = 0.0;
        }
        let demand = self.service_time(job.bytes, job.overhead).as_nanos() as f64;
        let seq = self.fair.next_seq;
        self.fair.next_seq += 1;
        self.fair.heap.push(Reverse(FairEntry {
            finish_v: self.fair.vtime + demand,
            seq,
            job,
            admitted: now,
            trace_slot,
        }));
        let n = self.fair.heap.len();
        self.max_active = self.max_active.max(n);
        // Nothing ever waits under processor sharing; the FIFO-analogous
        // "queue" is the overflow past the nominal slot count.
        self.max_queue_len = self.max_queue_len.max(n.saturating_sub(self.capacity));
        self.wait_hist.observe(0);
        self.bytes_served += job.bytes;
        self.jobs_served += 1;
    }

    /// Completion instant of the active transfer with the least
    /// remaining virtual demand, or `None` when the set is empty. Only
    /// valid immediately after the clock was advanced (every engine
    /// call site advances via arrival/completion first).
    pub(crate) fn fair_next_completion(&self) -> Option<SimTime> {
        let Reverse(head) = self.fair.heap.peek()?;
        let share = self.fair_share(self.fair.heap.len());
        let remaining = head.finish_v - self.fair.vtime;
        Some(self.integrate_done(self.fair.last_t, remaining, share))
    }

    /// Pop the completing transfer at `now`, returning its job,
    /// admission time, and trace slot. The caller must reschedule the
    /// resource's next-completion event afterwards.
    pub(crate) fn fair_complete(&mut self, now: SimTime) -> (Job, SimTime, Option<usize>) {
        debug_assert_eq!(self.policy, SharePolicy::FairShare);
        self.fair_advance(now);
        let Reverse(entry) = self
            .fair
            .heap
            .pop()
            .expect("fair completion fired on an empty resource");
        (entry.job, entry.admitted, entry.trace_slot)
    }

    /// Take the engine handle of the scheduled next-completion event.
    pub(crate) fn take_pending(&mut self) -> Option<(usize, u64)> {
        self.fair.pending.take()
    }

    /// Store the engine handle of the scheduled next-completion event.
    pub(crate) fn set_pending(&mut self, handle: (usize, u64)) {
        debug_assert!(self.fair.pending.is_none());
        self.fair.pending = Some(handle);
    }

    pub(crate) fn usage(&self) -> ResourceUsage {
        ResourceUsage {
            name: self.name.clone(),
            busy_time: self.busy_time,
            bytes_served: self.bytes_served,
            jobs_served: self.jobs_served,
            max_queue_len: self.max_queue_len,
            max_active: self.max_active,
            wait_hist: self.wait_hist.clone(),
        }
    }
}

/// Post-run accounting for one resource.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResourceUsage {
    /// Name the resource was registered with.
    pub name: String,
    /// Total service time delivered (may exceed the makespan when the
    /// resource has multiple service slots). Under fair sharing this is
    /// the integral of `min(active, capacity)` over time — the same
    /// slot-seconds a FIFO server would account for the same work.
    pub busy_time: SimDuration,
    /// Total bytes pushed through the server.
    pub bytes_served: u64,
    /// Number of jobs served.
    pub jobs_served: u64,
    /// High-water mark of jobs beyond the nominal slot count: the
    /// waiting queue under FIFO (excludes jobs in service), the active
    /// set's overflow past `capacity` under fair sharing.
    pub max_queue_len: usize,
    /// High-water mark of simultaneously served transfers: jobs holding
    /// a slot under FIFO (≤ capacity), the whole active set under fair
    /// sharing (unbounded).
    pub max_active: usize,
    /// Distribution of per-job queueing delay, in nanoseconds. Jobs that
    /// found a free slot record a zero wait, so `wait_hist.count()`
    /// equals `jobs_served` after a completed run. Fair-share admissions
    /// never wait: every observation is zero.
    pub wait_hist: Histogram,
}

impl ResourceUsage {
    /// Fraction of the makespan this resource was busy, in `[0, 1]`
    /// (assuming `makespan` covers the whole run).
    pub fn utilization(&self, makespan: SimDuration) -> f64 {
        if makespan.is_zero() {
            0.0
        } else {
            self.busy_time.as_secs_f64() / makespan.as_secs_f64()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(bytes: u64) -> Job {
        Job {
            activity: ActivityId(0),
            bytes,
            overhead: SimDuration::ZERO,
        }
    }

    #[test]
    fn bandwidth_transfer_time() {
        let bw = Bandwidth::bytes_per_sec(1000.0);
        assert_eq!(bw.transfer_time(2000), SimDuration::from_secs(2));
        assert_eq!(bw.transfer_time(0), SimDuration::ZERO);
        assert_eq!(
            Bandwidth::infinite().transfer_time(1 << 40),
            SimDuration::ZERO
        );
    }

    #[test]
    fn degenerate_bandwidth_becomes_infinite() {
        assert_eq!(
            Bandwidth::bytes_per_sec(0.0).transfer_time(100),
            SimDuration::ZERO
        );
        assert_eq!(
            Bandwidth::bytes_per_sec(-5.0).transfer_time(100),
            SimDuration::ZERO
        );
        assert_eq!(
            Bandwidth::bytes_per_sec(f64::NAN).transfer_time(100),
            SimDuration::ZERO
        );
    }

    #[test]
    fn mib_gib_constructors() {
        assert_eq!(
            Bandwidth::mib_per_sec(1.0).as_bytes_per_sec(),
            1024.0 * 1024.0
        );
        assert_eq!(
            Bandwidth::gib_per_sec(1.0).as_bytes_per_sec(),
            1024.0 * 1024.0 * 1024.0
        );
    }

    #[test]
    fn share_policy_labels_round_trip() {
        for p in [SharePolicy::Fifo, SharePolicy::FairShare] {
            assert_eq!(SharePolicy::parse(p.label()), Some(p));
        }
        assert_eq!(
            SharePolicy::parse("fair-share"),
            Some(SharePolicy::FairShare)
        );
        assert_eq!(SharePolicy::parse("lifo"), None);
    }

    #[test]
    fn fifo_queueing() {
        let mut r = Resource::new("r", Bandwidth::bytes_per_sec(100.0));
        let t0 = SimTime::ZERO;
        // First job starts immediately.
        let done = r.enqueue(t0, job(100)).expect("idle server starts job");
        assert_eq!(done, t0 + SimDuration::from_secs(1));
        // Second queues.
        assert!(r.enqueue(t0, job(200)).is_none());
        assert_eq!(r.usage().max_queue_len, 1);
        // Completion pops the queue.
        let (next, next_done) = r.complete_current(done).expect("queued job");
        assert_eq!(next.bytes, 200);
        assert_eq!(next_done, done + SimDuration::from_secs(2));
        assert!(r.complete_current(next_done).is_none());
        let u = r.usage();
        assert_eq!(u.jobs_served, 2);
        assert_eq!(u.bytes_served, 300);
        assert_eq!(u.busy_time, SimDuration::from_secs(3));
        assert_eq!(u.max_active, 1);
    }

    #[test]
    fn wait_times_recorded_per_job() {
        let mut r = Resource::new("r", Bandwidth::bytes_per_sec(100.0));
        let t0 = SimTime::ZERO;
        let done = r.enqueue(t0, job(100)).unwrap();
        assert!(r.enqueue(t0, job(100)).is_none());
        r.complete_current(done);
        let u = r.usage();
        // One immediate start (0 ns wait), one that waited a full second.
        assert_eq!(u.wait_hist.count(), u.jobs_served);
        assert_eq!(u.wait_hist.min(), Some(0));
        assert_eq!(u.wait_hist.max(), Some(1_000_000_000));
    }

    #[test]
    fn overhead_adds_to_service() {
        let r = Resource::new("r", Bandwidth::bytes_per_sec(100.0));
        assert_eq!(
            r.service_time(100, SimDuration::from_millis(500)),
            SimDuration::from_millis(1500)
        );
    }

    #[test]
    fn slow_window_stretches_service() {
        // 100 B/s server, 100-byte job ⇒ nominally 1 s. A half-rate
        // window covering the whole job doubles it.
        let mut r = Resource::new("r", Bandwidth::bytes_per_sec(100.0));
        r.set_service_windows(vec![ServiceWindow {
            start: SimTime::ZERO,
            end: SimTime::from_nanos(u64::MAX),
            rate: 0.5,
        }]);
        let done = r.enqueue(SimTime::ZERO, job(100)).unwrap();
        assert_eq!(done, SimTime::ZERO + SimDuration::from_secs(2));
        assert_eq!(r.usage().busy_time, SimDuration::from_secs(2));
    }

    #[test]
    fn stall_window_freezes_progress() {
        // Job starts at t=0, stall covers [0.5 s, 2.5 s): the first half
        // second does half the work, then nothing until 2.5 s, then the
        // remaining half second ⇒ done at 3 s.
        let mut r = Resource::new("r", Bandwidth::bytes_per_sec(100.0));
        r.set_service_windows(vec![ServiceWindow {
            start: SimTime::from_nanos(500_000_000),
            end: SimTime::from_nanos(2_500_000_000),
            rate: 0.0,
        }]);
        let done = r.enqueue(SimTime::ZERO, job(100)).unwrap();
        assert_eq!(done, SimTime::from_nanos(3_000_000_000));
    }

    #[test]
    fn job_outside_windows_is_unperturbed() {
        let mut r = Resource::new("r", Bandwidth::bytes_per_sec(100.0));
        r.set_service_windows(vec![ServiceWindow {
            start: SimTime::from_nanos(10),
            end: SimTime::from_nanos(20),
            rate: 0.0,
        }]);
        // Starting after the window ends: exact nominal completion.
        let t = SimTime::from_nanos(1_000_000_000);
        let done = r.enqueue(t, job(100)).unwrap();
        assert_eq!(done, t + SimDuration::from_secs(1));
    }

    #[test]
    fn empty_and_reversed_windows_are_dropped() {
        let mut r = Resource::new("r", Bandwidth::bytes_per_sec(100.0));
        r.set_service_windows(vec![ServiceWindow {
            start: SimTime::from_nanos(20),
            end: SimTime::from_nanos(20),
            rate: 0.0,
        }]);
        let done = r.enqueue(SimTime::ZERO, job(100)).unwrap();
        assert_eq!(done, SimTime::ZERO + SimDuration::from_secs(1));
    }

    #[test]
    fn zero_service_job_completes_immediately_even_in_a_stall() {
        // A zero-byte, zero-overhead job needs zero work: it must
        // complete at t+0 even when admitted inside a full stall window
        // (previously it was pushed to the window's end).
        let mut r = Resource::new("r", Bandwidth::bytes_per_sec(100.0));
        r.set_service_windows(vec![ServiceWindow {
            start: SimTime::ZERO,
            end: SimTime::from_nanos(10_000_000_000),
            rate: 0.0,
        }]);
        let t = SimTime::from_nanos(1_000);
        let done = r.enqueue(t, job(0)).unwrap();
        assert_eq!(done, t);
    }

    #[test]
    fn job_finishing_exactly_at_stall_start_is_not_dragged_to_its_end() {
        // 1 s of work starting at t=0; a stall covers [1 s, 5 s). The
        // job's last byte lands exactly at the stall boundary, so it
        // completes at 1 s, not at the stall's end.
        let mut r = Resource::new("r", Bandwidth::bytes_per_sec(100.0));
        r.set_service_windows(vec![ServiceWindow {
            start: SimTime::from_nanos(1_000_000_000),
            end: SimTime::from_nanos(5_000_000_000),
            rate: 0.0,
        }]);
        let done = r.enqueue(SimTime::ZERO, job(100)).unwrap();
        assert_eq!(done, SimTime::from_nanos(1_000_000_000));
    }

    #[test]
    fn fair_single_transfer_matches_fifo_arithmetic() {
        let mut f = Resource::with_policy(
            "f",
            Bandwidth::bytes_per_sec(100.0),
            1,
            SharePolicy::FairShare,
        );
        let t0 = SimTime::from_nanos(123_456_789);
        f.fair_arrive(t0, job(100), None);
        assert_eq!(
            f.fair_next_completion(),
            Some(t0 + SimDuration::from_secs(1))
        );
        let (j, admitted, _) = f.fair_complete(t0 + SimDuration::from_secs(1));
        assert_eq!(j.bytes, 100);
        assert_eq!(admitted, t0);
        assert_eq!(f.usage().busy_time, SimDuration::from_secs(1));
        assert_eq!(f.usage().max_active, 1);
        assert_eq!(f.usage().max_queue_len, 0);
    }

    #[test]
    fn fair_two_transfers_split_the_rate() {
        // Two 100-byte transfers admitted together on a 100 B/s server:
        // each progresses at 50 B/s, both finish at 2 s (admission order
        // breaks the tie).
        let mut f = Resource::with_policy(
            "f",
            Bandwidth::bytes_per_sec(100.0),
            1,
            SharePolicy::FairShare,
        );
        f.fair_arrive(SimTime::ZERO, job(100), None);
        f.fair_arrive(SimTime::ZERO, job(100), None);
        let done = f.fair_next_completion().unwrap();
        assert_eq!(done, SimTime::from_nanos(2_000_000_000));
        f.fair_complete(done);
        // The survivor has no competition left; it was already fully
        // served at the same instant.
        assert_eq!(f.fair_next_completion(), Some(done));
        f.fair_complete(done);
        let u = f.usage();
        // Busy integral: min(2, 1) slot over 2 s.
        assert_eq!(u.busy_time, SimDuration::from_secs(2));
        assert_eq!(u.max_active, 2);
        assert_eq!(u.max_queue_len, 1);
        assert_eq!(u.jobs_served, 2);
    }

    #[test]
    fn fair_late_arrival_processor_sharing() {
        // A starts alone at t=0 (100 B at 100 B/s). B (50 B) arrives at
        // 0.5 s. A has 50 B left; both share at 50 B/s. Both demands
        // drain together at t = 0.5 + 1.0 = 1.5 s.
        let mut f = Resource::with_policy(
            "f",
            Bandwidth::bytes_per_sec(100.0),
            1,
            SharePolicy::FairShare,
        );
        f.fair_arrive(SimTime::ZERO, job(100), None);
        f.fair_arrive(SimTime::from_nanos(500_000_000), job(50), None);
        let done = f.fair_next_completion().unwrap();
        assert_eq!(done, SimTime::from_nanos(1_500_000_000));
        let (first, _, _) = f.fair_complete(done);
        // Tie on virtual finish time: admission order wins — A first.
        assert_eq!(first.bytes, 100);
        assert_eq!(f.fair_next_completion(), Some(done));
    }

    #[test]
    fn fair_capacity_two_serves_pairs_at_full_rate() {
        // capacity 2: two transfers get a full slot each — identical to
        // the FIFO multi-slot semantics. A third shares: 2 slots / 3.
        let mut f = Resource::with_policy(
            "f",
            Bandwidth::bytes_per_sec(100.0),
            2,
            SharePolicy::FairShare,
        );
        f.fair_arrive(SimTime::ZERO, job(100), None);
        f.fair_arrive(SimTime::ZERO, job(100), None);
        assert_eq!(
            f.fair_next_completion(),
            Some(SimTime::from_nanos(1_000_000_000))
        );
        f.fair_arrive(SimTime::ZERO, job(100), None);
        // Each of the three now progresses at 2/3 rate: 1.5 s.
        assert_eq!(
            f.fair_next_completion(),
            Some(SimTime::from_nanos(1_500_000_000))
        );
    }

    #[test]
    fn fair_overhead_only_transfers_contend() {
        // Infinite bandwidth, pure overhead (the OST shape): two 1 ms
        // requests admitted together each progress at half rate — 2 ms.
        let mut f = Resource::with_policy("ost0", Bandwidth::infinite(), 1, SharePolicy::FairShare);
        let j = Job {
            activity: ActivityId(0),
            bytes: 0,
            overhead: SimDuration::from_millis(1),
        };
        f.fair_arrive(SimTime::ZERO, j, None);
        f.fair_arrive(SimTime::ZERO, j, None);
        assert_eq!(
            f.fair_next_completion(),
            Some(SimTime::from_nanos(2_000_000))
        );
    }

    #[test]
    fn fair_window_slows_the_whole_set() {
        // Two 100-byte transfers on 100 B/s under a half-rate window:
        // effective 25 B/s each ⇒ 4 s.
        let mut f = Resource::with_policy(
            "f",
            Bandwidth::bytes_per_sec(100.0),
            1,
            SharePolicy::FairShare,
        );
        f.set_service_windows(vec![ServiceWindow {
            start: SimTime::ZERO,
            end: SimTime::from_nanos(u64::MAX),
            rate: 0.5,
        }]);
        f.fair_arrive(SimTime::ZERO, job(100), None);
        f.fair_arrive(SimTime::ZERO, job(100), None);
        assert_eq!(
            f.fair_next_completion(),
            Some(SimTime::from_nanos(4_000_000_000))
        );
    }

    #[test]
    fn fair_zero_demand_completes_at_admission() {
        let mut f = Resource::with_policy(
            "f",
            Bandwidth::bytes_per_sec(100.0),
            1,
            SharePolicy::FairShare,
        );
        f.set_service_windows(vec![ServiceWindow {
            start: SimTime::ZERO,
            end: SimTime::from_nanos(u64::MAX),
            rate: 0.0,
        }]);
        let t = SimTime::from_nanos(42);
        f.fair_arrive(t, job(0), None);
        assert_eq!(f.fair_next_completion(), Some(t));
    }

    #[test]
    fn fair_vtime_resets_when_drained() {
        // Run one transfer, drain, run another far later: the second
        // admission must compute the same exact arithmetic as the first
        // (no accumulated virtual time).
        let mut f = Resource::with_policy(
            "f",
            Bandwidth::bytes_per_sec(100.0),
            1,
            SharePolicy::FairShare,
        );
        f.fair_arrive(SimTime::ZERO, job(100), None);
        let d1 = f.fair_next_completion().unwrap();
        f.fair_complete(d1);
        let t2 = SimTime::from_nanos(77_000_000_123);
        f.fair_arrive(t2, job(100), None);
        assert_eq!(
            f.fair_next_completion(),
            Some(t2 + SimDuration::from_secs(1))
        );
    }

    #[test]
    fn utilization() {
        let u = ResourceUsage {
            name: "r".into(),
            busy_time: SimDuration::from_secs(1),
            bytes_served: 0,
            jobs_served: 0,
            max_queue_len: 0,
            max_active: 0,
            wait_hist: Histogram::new(),
        };
        assert!((u.utilization(SimDuration::from_secs(4)) - 0.25).abs() < 1e-12);
        assert_eq!(u.utilization(SimDuration::ZERO), 0.0);
    }
}
