//! The event-driven engine: builds an activity DAG over resources, then
//! runs it to completion, producing a [`RunReport`].

use crate::activity::{Activity, ActivityId, ActivityState};
use crate::resource::{Bandwidth, Job, Resource, ResourceId, ResourceUsage, SharePolicy};
use crate::time::{SimDuration, SimTime};
use mcio_obs::{Histogram, Registry, TraceCollector};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;

/// Errors a simulation run can produce.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The dependency graph has a cycle (or an unreleasable activity):
    /// these activities never became ready.
    Deadlock {
        /// Labels of the stuck activities (up to the first few).
        stuck: Vec<String>,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Deadlock { stuck } => {
                write!(f, "simulation deadlock; stuck activities: {stuck:?}")
            }
        }
    }
}

impl std::error::Error for SimError {}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Event {
    /// All dependencies satisfied; start the activity (first stage).
    Ready(ActivityId),
    /// The activity should join the queue of its `next_stage` resource.
    EnterStage(ActivityId),
    /// The resource finished serving this activity's current stage
    /// (FIFO resources: one event per job).
    StageServed(ActivityId),
    /// A fair-share resource's earliest active transfer completes. Each
    /// fair resource keeps at most one of these pending; arrivals and
    /// departures cancel and re-predict it (indexed cancellation).
    FairComplete(ResourceId),
}

/// One recorded service interval: `activity` occupied `resource` from
/// `start` to `end` (only collected when tracing is enabled).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceRecord {
    /// The occupied resource.
    pub resource: ResourceId,
    /// The served activity.
    pub activity: ActivityId,
    /// Service start.
    pub start: SimTime,
    /// Service end.
    pub end: SimTime,
}

/// One event-heap entry: `(time, sequence, slot, generation, class)`.
/// `sequence` makes the ordering total; `class` is informational (at
/// equal time and order, completions sort before arrivals).
type HeapEntry = (SimTime, u64, usize, u64, u8);

/// A discrete-event simulation under construction.
///
/// Add resources and activities, wire dependencies with
/// [`Simulation::add_dep`], then call [`Simulation::run`].
#[derive(Debug, Default)]
pub struct Simulation {
    resources: Vec<Resource>,
    activities: Vec<ActivityState>,
    /// Event heap keyed by (time, sequence) for determinism; entries
    /// carry the slot generation they were pushed with, so cancelled
    /// (re-generated) slots are skipped on pop.
    heap: BinaryHeap<Reverse<HeapEntry>>,
    /// Pooled event slots: `(event, generation)`. Slots are recycled
    /// through `free_slots`, bumping the generation each time, so the
    /// pool's footprint tracks *concurrent* events rather than total
    /// events scheduled.
    events: Vec<(Event, u64)>,
    /// Recycled slot indices available for the next `push_event`.
    free_slots: Vec<usize>,
    /// Monotone event sequence counter (heap tiebreak). Independent of
    /// slot indices, which are reused.
    next_seq: u64,
    /// Service discipline applied to newly registered resources.
    default_policy: SharePolicy,
    /// Service-interval trace, when enabled.
    trace: Option<Vec<ServiceRecord>>,
    /// Engine health counters (event count, heap depth distribution).
    engine_stats: EngineStats,
    /// `Ready` events currently pending in the heap (feeds the
    /// ready-set high-water mark).
    pending_ready: usize,
}

/// Health statistics of the event engine itself: how much scheduling
/// work a run took, independent of simulated time. Queue depth is
/// sampled once per processed event. Every field is a pure function of
/// the activity DAG, so the stats are byte-identical across runs and
/// across worker-thread counts.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Total events processed by the run loop.
    pub events_processed: u64,
    /// Total events pushed onto the heap (seed `Ready` events plus every
    /// `EnterStage`/`StageServed` scheduled while running).
    pub events_scheduled: u64,
    /// Events scheduled and then retracted before firing. The FIFO
    /// engine never cancels (always 0); fair-share resources re-predict
    /// their single next-completion event on every arrival/departure,
    /// cancelling the stale prediction. At the end of a run
    /// `events_scheduled == events_processed + events_cancelled`.
    pub events_cancelled: u64,
    /// High-water mark of the pending-event heap. Cancelled entries
    /// stay in the heap (lazily skipped on pop), so this measures the
    /// physical heap including stale entries.
    pub max_queue_depth: usize,
    /// High-water mark of pending `Ready` events: how many activities
    /// were released but not yet started at the worst moment (the
    /// frontier width of the DAG as the engine saw it).
    pub max_ready_set: usize,
    /// Distribution of heap depth observed at each event pop.
    pub queue_depth: Histogram,
}

impl Simulation {
    /// An empty simulation serving resources FIFO.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty simulation whose resources default to `policy`
    /// ([`Simulation::add_resource_with_policy`] overrides per
    /// resource).
    pub fn with_policy(policy: SharePolicy) -> Self {
        Simulation {
            default_policy: policy,
            ..Self::default()
        }
    }

    /// The service discipline newly registered resources receive.
    pub fn default_policy(&self) -> SharePolicy {
        self.default_policy
    }

    /// Record every resource service interval; the run report will carry
    /// the trace (see [`RunReport::chrome_trace_json`]).
    pub fn enable_trace(&mut self) {
        self.trace = Some(Vec::new());
    }

    /// Register a bandwidth resource with one service slot, under the
    /// simulation's default policy.
    pub fn add_resource(&mut self, name: impl Into<String>, bw: Bandwidth) -> ResourceId {
        self.add_resource_with_capacity(name, bw, 1)
    }

    /// Register a bandwidth resource with `capacity` parallel service
    /// slots (each slot serves at the full bandwidth), under the
    /// simulation's default policy.
    pub fn add_resource_with_capacity(
        &mut self,
        name: impl Into<String>,
        bw: Bandwidth,
        capacity: usize,
    ) -> ResourceId {
        self.add_resource_with_policy(name, bw, capacity, self.default_policy)
    }

    /// Register a bandwidth resource under an explicit service
    /// discipline, overriding the simulation default.
    pub fn add_resource_with_policy(
        &mut self,
        name: impl Into<String>,
        bw: Bandwidth,
        capacity: usize,
        policy: SharePolicy,
    ) -> ResourceId {
        let id = ResourceId(self.resources.len());
        self.resources
            .push(Resource::with_policy(name, bw, capacity, policy));
        id
    }

    /// Install fault-injection service windows on a resource: while a
    /// window is active the resource progresses at `window.rate` of its
    /// nominal speed (0 = stall). Replaces any previous set for that
    /// resource. Must be called before `run`.
    pub fn set_service_windows(&mut self, rid: ResourceId, windows: Vec<crate::ServiceWindow>) {
        self.resources[rid.0].set_service_windows(windows);
    }

    /// Register an activity. Panics if any stage names an unknown resource.
    pub fn add_activity(&mut self, activity: Activity) -> ActivityId {
        for s in &activity.stages {
            assert!(
                s.resource.0 < self.resources.len(),
                "activity `{}` references unknown resource {:?}",
                activity.label,
                s.resource
            );
        }
        let id = ActivityId(self.activities.len());
        self.activities.push(ActivityState::from_activity(activity));
        id
    }

    /// Declare that `after` cannot start until `before` has completed.
    pub fn add_dep(&mut self, before: ActivityId, after: ActivityId) {
        assert_ne!(before, after, "activity cannot depend on itself");
        self.activities[before.0].dependents.push(after);
        self.activities[after.0].deps_remaining += 1;
    }

    /// Number of registered activities.
    pub fn activity_count(&self) -> usize {
        self.activities.len()
    }

    /// Number of registered resources.
    pub fn resource_count(&self) -> usize {
        self.resources.len()
    }

    /// Schedule `ev` at `t`. Returns the slot handle `(index,
    /// generation)` that [`Simulation::cancel_event`] accepts.
    fn push_event(&mut self, t: SimTime, ev: Event) -> (usize, u64) {
        let seq = self.next_seq;
        self.next_seq += 1;
        // The priority tuple carries a class byte so that, at equal time and
        // insertion order, completions at a resource are handled before new
        // arrivals; `seq` already makes ordering total so the class byte is
        // informational only.
        let class = match ev {
            Event::StageServed(_) | Event::FairComplete(_) => 0,
            Event::EnterStage(_) => 1,
            Event::Ready(_) => 2,
        };
        self.engine_stats.events_scheduled += 1;
        if matches!(ev, Event::Ready(_)) {
            self.pending_ready += 1;
            self.engine_stats.max_ready_set =
                self.engine_stats.max_ready_set.max(self.pending_ready);
        }
        let (idx, gen) = match self.free_slots.pop() {
            Some(idx) => {
                let gen = self.events[idx].1.wrapping_add(1);
                self.events[idx] = (ev, gen);
                (idx, gen)
            }
            None => {
                self.events.push((ev, 0));
                (self.events.len() - 1, 0)
            }
        };
        self.heap.push(Reverse((t, seq, idx, gen, class)));
        (idx, gen)
    }

    /// Retract a scheduled event before it fires. The heap entry stays
    /// (and is skipped on pop via its stale generation); the slot is
    /// recycled immediately.
    fn cancel_event(&mut self, handle: (usize, u64)) {
        let (idx, gen) = handle;
        debug_assert_eq!(self.events[idx].1, gen, "cancelling a dead event");
        self.events[idx].1 = gen.wrapping_add(1);
        self.free_slots.push(idx);
        self.engine_stats.events_cancelled += 1;
    }

    /// Run the simulation to completion.
    ///
    /// Consumes the simulation; returns a [`RunReport`] with per-activity
    /// timings and per-resource usage, or [`SimError::Deadlock`] if the
    /// dependency graph prevented some activity from ever running.
    pub fn run(mut self) -> Result<RunReport, SimError> {
        // Seed: every activity with no outstanding dependencies is ready at
        // its release time.
        for i in 0..self.activities.len() {
            if self.activities[i].deps_remaining == 0 {
                let t = self.activities[i].release;
                self.push_event(t, Event::Ready(ActivityId(i)));
            }
        }

        let mut now = SimTime::ZERO;
        while let Some(Reverse((t, _seq, idx, gen, _class))) = self.heap.pop() {
            if self.events[idx].1 != gen {
                // Cancelled (counted when retracted); skip lazily. The
                // slot may already be serving a different live event.
                continue;
            }
            let ev = self.events[idx].0;
            // Recycle the slot before dispatch so events scheduled by
            // this very event can reuse it.
            self.events[idx].1 = gen.wrapping_add(1);
            self.free_slots.push(idx);
            debug_assert!(t >= now, "time went backwards");
            now = t;
            self.engine_stats.events_processed += 1;
            let depth = self.heap.len();
            self.engine_stats.max_queue_depth = self.engine_stats.max_queue_depth.max(depth);
            self.engine_stats.queue_depth.observe(depth as u64);
            match ev {
                Event::Ready(a) => {
                    debug_assert!(self.activities[a.0].started.is_none());
                    self.pending_ready -= 1;
                    self.activities[a.0].started = Some(now);
                    self.advance(a, now);
                }
                Event::EnterStage(a) => {
                    // Either enqueue the next stage or, if the latency we
                    // just waited out followed the final stage, complete.
                    self.advance(a, now);
                }
                Event::StageServed(a) => {
                    // Free the server and start the next queued job, if any.
                    let rid = self.activities[a.0].stages[self.activities[a.0].next_stage].resource;
                    if let Some((next_job, done)) = self.resources[rid.0].complete_current(now) {
                        if let Some(trace) = &mut self.trace {
                            trace.push(ServiceRecord {
                                resource: rid,
                                activity: next_job.activity,
                                start: now,
                                end: done,
                            });
                        }
                        self.push_event(done, Event::StageServed(next_job.activity));
                    }
                    // This activity leaves the stage; honor post-latency.
                    self.leave_stage(a, now);
                }
                Event::FairComplete(rid) => {
                    // This event *was* the resource's pending prediction;
                    // it fired, so just drop the stored handle.
                    self.resources[rid.0].take_pending();
                    let (job, _admitted, trace_slot) = self.resources[rid.0].fair_complete(now);
                    if let (Some(trace), Some(slot)) = (self.trace.as_mut(), trace_slot) {
                        trace[slot].end = now;
                    }
                    // The active set shrank: re-predict the resource's
                    // next completion before moving the activity on.
                    self.reschedule_fair(rid, now);
                    self.leave_stage(job.activity, now);
                }
            }
        }

        // Anything not finished is deadlocked (cycle or missing release).
        let stuck: Vec<String> = self
            .activities
            .iter()
            .filter(|a| a.finished.is_none())
            .take(8)
            .map(|a| a.label.clone())
            .collect();
        if !stuck.is_empty() {
            return Err(SimError::Deadlock { stuck });
        }

        let makespan = self
            .activities
            .iter()
            .filter_map(|a| a.finished)
            .max()
            .unwrap_or(SimTime::ZERO);
        Ok(RunReport {
            makespan,
            finishes: self.activities.iter().map(|a| a.finished).collect(),
            starts: self.activities.iter().map(|a| a.started).collect(),
            labels: self.activities.iter().map(|a| a.label.clone()).collect(),
            resource_names: self
                .resources
                .iter()
                .map(|r| r.name().to_string())
                .collect(),
            usages: self.resources.iter().map(|r| r.usage()).collect(),
            trace: self.trace.take(),
            engine_stats: self.engine_stats.clone(),
        })
    }

    /// Move activity `a` forward from its current stage pointer: either
    /// enter the next stage's queue or complete.
    fn advance(&mut self, a: ActivityId, now: SimTime) {
        let st = &self.activities[a.0];
        if st.next_stage >= st.stages.len() {
            self.complete(a, now);
            return;
        }
        let stage = st.stages[st.next_stage];
        let job = Job {
            activity: a,
            bytes: stage.bytes,
            overhead: stage.overhead,
        };
        let rid = stage.resource;
        match self.resources[rid.0].policy() {
            SharePolicy::Fifo => {
                if let Some(done) = self.resources[rid.0].enqueue(now, job) {
                    if let Some(trace) = &mut self.trace {
                        trace.push(ServiceRecord {
                            resource: rid,
                            activity: a,
                            start: now,
                            end: done,
                        });
                    }
                    self.push_event(done, Event::StageServed(a));
                }
            }
            SharePolicy::FairShare => {
                // Record the trace span now (the FIFO engine records at
                // service start, which under processor sharing is the
                // admission instant) and backpatch its end on
                // completion.
                let trace_slot = self.trace.as_mut().map(|trace| {
                    trace.push(ServiceRecord {
                        resource: rid,
                        activity: a,
                        start: now,
                        end: now,
                    });
                    trace.len() - 1
                });
                self.resources[rid.0].fair_arrive(now, job, trace_slot);
                self.reschedule_fair(rid, now);
            }
        }
    }

    /// The activity's current stage is done: honor the stage's
    /// post-service latency, then advance.
    fn leave_stage(&mut self, a: ActivityId, now: SimTime) {
        let latency = self.activities[a.0].stages[self.activities[a.0].next_stage].latency_after;
        self.activities[a.0].next_stage += 1;
        if latency.is_zero() {
            self.advance(a, now);
        } else {
            self.push_event(now + latency, Event::EnterStage(a));
        }
    }

    /// Re-predict a fair-share resource's next completion: retract the
    /// stale prediction (if any) and schedule a fresh one for the
    /// current active set.
    fn reschedule_fair(&mut self, rid: ResourceId, now: SimTime) {
        if let Some(handle) = self.resources[rid.0].take_pending() {
            self.cancel_event(handle);
        }
        if let Some(done) = self.resources[rid.0].fair_next_completion() {
            debug_assert!(done >= now, "fair completion predicted in the past");
            let handle = self.push_event(done, Event::FairComplete(rid));
            self.resources[rid.0].set_pending(handle);
        }
    }

    fn complete(&mut self, a: ActivityId, now: SimTime) {
        debug_assert!(self.activities[a.0].finished.is_none());
        self.activities[a.0].finished = Some(now);
        let dependents = std::mem::take(&mut self.activities[a.0].dependents);
        for d in dependents {
            let dep = &mut self.activities[d.0];
            debug_assert!(dep.deps_remaining > 0);
            dep.deps_remaining -= 1;
            if dep.deps_remaining == 0 {
                let when = now.max(dep.release);
                self.push_event(when, Event::Ready(d));
            }
        }
    }
}

/// Result of a completed simulation run.
#[derive(Debug, Clone)]
pub struct RunReport {
    makespan: SimTime,
    starts: Vec<Option<SimTime>>,
    finishes: Vec<Option<SimTime>>,
    labels: Vec<String>,
    resource_names: Vec<String>,
    usages: Vec<ResourceUsage>,
    trace: Option<Vec<ServiceRecord>>,
    engine_stats: EngineStats,
}

impl RunReport {
    /// Time the last activity completed.
    pub fn makespan(&self) -> SimTime {
        self.makespan
    }

    /// Completion time of an activity.
    pub fn finish_time(&self, a: ActivityId) -> SimTime {
        self.finishes[a.0].expect("activity finished in a successful run")
    }

    /// Start (release-satisfied) time of an activity.
    pub fn start_time(&self, a: ActivityId) -> SimTime {
        self.starts[a.0].expect("activity started in a successful run")
    }

    /// Latency of an activity from start to finish.
    pub fn elapsed(&self, a: ActivityId) -> SimDuration {
        self.finish_time(a).saturating_since(self.start_time(a))
    }

    /// Label of an activity.
    pub fn label(&self, a: ActivityId) -> &str {
        &self.labels[a.0]
    }

    /// Usage accounting for a resource.
    pub fn resource_usage(&self, r: ResourceId) -> &ResourceUsage {
        &self.usages[r.0]
    }

    /// Usage accounting for all resources, in registration order.
    pub fn resource_usages(&self) -> &[ResourceUsage] {
        &self.usages
    }

    /// Number of activities in the run.
    pub fn activity_count(&self) -> usize {
        self.finishes.len()
    }

    /// The recorded service trace, if tracing was enabled.
    pub fn trace(&self) -> Option<&[ServiceRecord]> {
        self.trace.as_deref()
    }

    /// Engine health counters for the run (event count, heap depth).
    pub fn engine_stats(&self) -> &EngineStats {
        &self.engine_stats
    }

    /// Peak active transfer set size aggregated per resource *class*
    /// (the name with its node/OST index stripped: `node3.membus` →
    /// `membus`, `ost17` → `ost`), sorted by class name. "Active" means
    /// holding a service slot under FIFO (≤ capacity) and any admitted
    /// transfer under fair sharing, so the number measures concurrency
    /// pressure on the class under either engine. Resources that never
    /// served a job are skipped entirely, matching
    /// [`RunReport::record_into`].
    pub fn class_max_queues(&self) -> Vec<(String, u64)> {
        let mut per_class: std::collections::BTreeMap<String, u64> =
            std::collections::BTreeMap::new();
        for u in &self.usages {
            if u.jobs_served == 0 {
                continue;
            }
            let entry = per_class.entry(resource_class(&u.name)).or_insert(0);
            *entry = (*entry).max(u.max_active as u64);
        }
        per_class.into_iter().collect()
    }

    /// The deterministic engine-side profile of this run: event, heap,
    /// ready-set and per-class queue counters plus the activity and
    /// resource population. Everything here is a pure function of the
    /// activity DAG — byte-identical across runs and worker-thread
    /// counts — so it may enter byte-diffed documents (the
    /// `deterministic` section of `mcio.prof.v1`), unlike wall-clock
    /// data.
    pub fn engine_profile(&self) -> EngineProfile {
        EngineProfile {
            events_scheduled: self.engine_stats.events_scheduled,
            events_fired: self.engine_stats.events_processed,
            events_cancelled: self.engine_stats.events_cancelled,
            heap_high_water: self.engine_stats.max_queue_depth as u64,
            ready_high_water: self.engine_stats.max_ready_set as u64,
            activities: self.finishes.len() as u64,
            resources: self.usages.len() as u64,
            class_max_queue: self.class_max_queues(),
        }
    }

    /// Record this run's accounting into a metrics [`Registry`]:
    /// per-resource busy time, bytes, jobs, utilization, peak queue
    /// length, and wait-time histograms, plus engine event/heap-depth
    /// stats and the makespan. Metric names are stable and documented
    /// in `docs/observability.md`.
    pub fn record_into(&self, reg: &Registry) {
        reg.describe(
            "des.makespan_ns",
            "ns",
            "simulated time of the last completion",
        );
        reg.describe(
            "des.engine.events",
            "1",
            "events processed by the DES run loop",
        );
        reg.describe(
            "des.engine.queue_depth",
            "1",
            "pending-event heap depth per event pop",
        );
        reg.describe(
            "des.engine.max_queue_depth",
            "1",
            "peak pending-event heap depth",
        );
        reg.describe(
            "des.engine.events_scheduled",
            "1",
            "events pushed onto the DES heap",
        );
        reg.describe(
            "des.engine.events_cancelled",
            "1",
            "events retracted before firing (fair-share re-predictions; 0 for FIFO)",
        );
        reg.describe(
            "des.engine.max_ready_set",
            "1",
            "peak count of released-but-unstarted activities",
        );
        reg.describe(
            "des.engine.class_max_queue",
            "1",
            "peak active transfer set per resource class",
        );
        reg.describe(
            "des.resource.busy_ns",
            "ns",
            "total service time delivered per resource",
        );
        reg.describe("des.resource.bytes", "bytes", "bytes served per resource");
        reg.describe("des.resource.jobs", "1", "jobs served per resource");
        reg.describe(
            "des.resource.utilization",
            "1",
            "busy time / makespan per resource (can exceed 1 for multi-slot resources)",
        );
        reg.describe(
            "des.resource.max_queue",
            "1",
            "peak jobs beyond the slot count per resource (FIFO queue / fair-share overflow)",
        );
        reg.describe(
            "des.resource.max_active",
            "1",
            "peak simultaneously served transfers per resource",
        );
        reg.describe(
            "des.resource.wait_ns",
            "ns",
            "per-job queueing delay per resource",
        );

        let makespan = self.makespan.saturating_since(SimTime::ZERO);
        reg.set_gauge("des.makespan_ns", &[], makespan.as_nanos() as f64);
        reg.inc("des.engine.events", &[], self.engine_stats.events_processed);
        reg.merge_histogram(
            "des.engine.queue_depth",
            &[],
            &self.engine_stats.queue_depth,
        );
        reg.set_gauge(
            "des.engine.max_queue_depth",
            &[],
            self.engine_stats.max_queue_depth as f64,
        );
        reg.inc(
            "des.engine.events_scheduled",
            &[],
            self.engine_stats.events_scheduled,
        );
        reg.inc(
            "des.engine.events_cancelled",
            &[],
            self.engine_stats.events_cancelled,
        );
        reg.set_gauge(
            "des.engine.max_ready_set",
            &[],
            self.engine_stats.max_ready_set as f64,
        );
        for (class, depth) in self.class_max_queues() {
            reg.set_gauge(
                "des.engine.class_max_queue",
                &[("class", class.as_str())],
                depth as f64,
            );
        }
        for u in &self.usages {
            // Resources that never served a job (e.g. nodes the process
            // map leaves idle on a large machine spec) would only add
            // all-zero series; skip them to keep exports readable.
            if u.jobs_served == 0 {
                continue;
            }
            let labels = &[("resource", u.name.as_str())][..];
            reg.inc("des.resource.busy_ns", labels, u.busy_time.as_nanos());
            reg.inc("des.resource.bytes", labels, u.bytes_served);
            reg.inc("des.resource.jobs", labels, u.jobs_served);
            reg.set_gauge("des.resource.utilization", labels, u.utilization(makespan));
            reg.set_gauge("des.resource.max_queue", labels, u.max_queue_len as f64);
            reg.set_gauge("des.resource.max_active", labels, u.max_active as f64);
            reg.merge_histogram("des.resource.wait_ns", labels, &u.wait_hist);
        }
    }

    /// Push the recorded service trace into a [`TraceCollector`] under
    /// subsystem group `pid`: one lane (`tid`) per resource, one span
    /// per service interval, with lanes named after the resources.
    /// No-op when tracing was not enabled.
    pub fn trace_into(&self, tc: &TraceCollector, pid: u64) {
        let Some(trace) = &self.trace else { return };
        tc.name_process(pid, "des.resources");
        let used: std::collections::BTreeSet<usize> =
            trace.iter().map(|r| r.resource.index()).collect();
        for tid in used {
            tc.name_thread(pid, tid as u64, &self.resource_names[tid]);
        }
        for rec in trace {
            tc.span(
                &self.labels[rec.activity.index()],
                &self.resource_names[rec.resource.index()],
                pid,
                rec.resource.index() as u64,
                rec.start.as_nanos(),
                rec.end.saturating_since(rec.start).as_nanos(),
            );
        }
    }

    /// Render the service trace in Chrome trace-event JSON (open in
    /// `chrome://tracing` / Perfetto): one lane per resource, one
    /// complete event per service interval. Empty when tracing was off.
    pub fn chrome_trace_json(&self) -> String {
        let mut out = String::from("[");
        if let Some(trace) = &self.trace {
            for (i, rec) in trace.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let name = escape_json(&self.labels[rec.activity.index()]);
                let lane = escape_json(&self.resource_names[rec.resource.index()]);
                // Times in microseconds, as the format expects.
                out.push_str(&format!(
                    "{{\"name\":\"{name}\",\"cat\":\"{lane}\",\"ph\":\"X\",\
                     \"ts\":{:.3},\"dur\":{:.3},\"pid\":0,\"tid\":{}}}",
                    rec.start.as_nanos() as f64 / 1000.0,
                    rec.end.saturating_since(rec.start).as_nanos() as f64 / 1000.0,
                    rec.resource.index(),
                ));
            }
        }
        out.push(']');
        out
    }
}

/// Deterministic engine-side profile of one completed run, consumed by
/// the `deterministic` section of the `mcio.prof.v1` sidecar (see
/// `mcio-prof`). All counters are pure functions of the activity DAG:
/// byte-identical across runs and across `--jobs` values.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct EngineProfile {
    /// Events pushed onto the heap over the whole run.
    pub events_scheduled: u64,
    /// Events popped and processed by the run loop.
    pub events_fired: u64,
    /// Events retracted before firing: fair-share next-completion
    /// re-predictions (always 0 for pure-FIFO runs).
    pub events_cancelled: u64,
    /// Peak pending-event heap depth (physical heap, including
    /// lazily-skipped cancelled entries).
    pub heap_high_water: u64,
    /// Peak count of released-but-unstarted activities (DAG frontier
    /// width as the engine saw it).
    pub ready_high_water: u64,
    /// Activities in the run.
    pub activities: u64,
    /// Resources registered (including ones the process map left idle).
    pub resources: u64,
    /// Peak active transfer set per resource class, sorted by class
    /// name ([`resource_class`]); idle resources are skipped.
    pub class_max_queue: Vec<(String, u64)>,
}

impl EngineProfile {
    /// Fold another run's profile into this one: counts and populations
    /// sum, high-water marks take the maximum, per-class queue depths
    /// take the per-class maximum. Folding is commutative, so a total
    /// over cells is identical no matter what order the cells finished
    /// in — the property the sweep determinism guarantee relies on.
    pub fn merge(&mut self, other: &EngineProfile) {
        self.events_scheduled += other.events_scheduled;
        self.events_fired += other.events_fired;
        self.events_cancelled += other.events_cancelled;
        self.heap_high_water = self.heap_high_water.max(other.heap_high_water);
        self.ready_high_water = self.ready_high_water.max(other.ready_high_water);
        self.activities += other.activities;
        self.resources += other.resources;
        let mut per_class: std::collections::BTreeMap<String, u64> =
            self.class_max_queue.drain(..).collect();
        for (class, depth) in &other.class_max_queue {
            let entry = per_class.entry(class.clone()).or_insert(0);
            *entry = (*entry).max(*depth);
        }
        self.class_max_queue = per_class.into_iter().collect();
    }
}

/// The class of a resource name: the suffix after the last `.` when one
/// exists (`node3.membus` → `membus`, `node0.nic_tx` → `nic_tx`),
/// otherwise the name with trailing digits stripped (`ost17` → `ost`).
pub fn resource_class(name: &str) -> String {
    match name.rsplit_once('.') {
        Some((_, suffix)) => suffix.to_string(),
        None => name
            .trim_end_matches(|c: char| c.is_ascii_digit())
            .to_string(),
    }
}

/// Minimal JSON string escaping for labels.
fn escape_json(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c if c.is_control() => vec![' '],
            c => vec![c],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activity::Activity;

    fn bw(bps: f64) -> Bandwidth {
        Bandwidth::bytes_per_sec(bps)
    }

    #[test]
    fn empty_simulation_runs() {
        let report = Simulation::new().run().unwrap();
        assert_eq!(report.makespan(), SimTime::ZERO);
        assert_eq!(report.activity_count(), 0);
    }

    #[test]
    fn single_stage_timing() {
        let mut sim = Simulation::new();
        let r = sim.add_resource("r", bw(100.0));
        let a = sim.add_activity(Activity::new("a").stage(r, 200, SimDuration::ZERO));
        let rep = sim.run().unwrap();
        assert_eq!(
            rep.finish_time(a),
            SimTime::ZERO + SimDuration::from_secs(2)
        );
        assert_eq!(rep.makespan().as_secs_f64(), 2.0);
    }

    #[test]
    fn contention_serializes() {
        let mut sim = Simulation::new();
        let r = sim.add_resource("r", bw(100.0));
        let a = sim.add_activity(Activity::new("a").stage(r, 100, SimDuration::ZERO));
        let b = sim.add_activity(Activity::new("b").stage(r, 100, SimDuration::ZERO));
        let rep = sim.run().unwrap();
        // FIFO: a first (registered first), b second.
        assert_eq!(rep.finish_time(a).as_secs_f64(), 1.0);
        assert_eq!(rep.finish_time(b).as_secs_f64(), 2.0);
        assert_eq!(rep.resource_usage(r).jobs_served, 2);
    }

    #[test]
    fn independent_resources_run_in_parallel() {
        let mut sim = Simulation::new();
        let r1 = sim.add_resource("r1", bw(100.0));
        let r2 = sim.add_resource("r2", bw(100.0));
        let a = sim.add_activity(Activity::new("a").stage(r1, 100, SimDuration::ZERO));
        let b = sim.add_activity(Activity::new("b").stage(r2, 100, SimDuration::ZERO));
        let rep = sim.run().unwrap();
        assert_eq!(rep.finish_time(a).as_secs_f64(), 1.0);
        assert_eq!(rep.finish_time(b).as_secs_f64(), 1.0);
        assert_eq!(rep.makespan().as_secs_f64(), 1.0);
    }

    #[test]
    fn dependencies_sequence_activities() {
        let mut sim = Simulation::new();
        let r = sim.add_resource("r", bw(100.0));
        let a = sim.add_activity(Activity::new("a").stage(r, 100, SimDuration::ZERO));
        let b = sim.add_activity(Activity::new("b").stage(r, 100, SimDuration::ZERO));
        let join = sim.add_activity(Activity::new("join"));
        let c = sim.add_activity(Activity::new("c").stage(r, 100, SimDuration::ZERO));
        sim.add_dep(a, join);
        sim.add_dep(b, join);
        sim.add_dep(join, c);
        let rep = sim.run().unwrap();
        assert_eq!(rep.finish_time(join).as_secs_f64(), 2.0);
        assert_eq!(rep.finish_time(c).as_secs_f64(), 3.0);
    }

    #[test]
    fn multi_stage_pipeline() {
        let mut sim = Simulation::new();
        let r1 = sim.add_resource("r1", bw(100.0));
        let r2 = sim.add_resource("r2", bw(50.0));
        let a = sim.add_activity(Activity::new("a").stage(r1, 100, SimDuration::ZERO).stage(
            r2,
            100,
            SimDuration::ZERO,
        ));
        let rep = sim.run().unwrap();
        // 1s on r1 then 2s on r2.
        assert_eq!(rep.finish_time(a).as_secs_f64(), 3.0);
    }

    #[test]
    fn latency_after_stage_delays_without_occupying() {
        let mut sim = Simulation::new();
        let r = sim.add_resource("r", bw(100.0));
        let a = sim.add_activity(Activity::new("a").stage_with_latency(
            r,
            100,
            SimDuration::ZERO,
            SimDuration::from_secs(5),
        ));
        let b = sim.add_activity(Activity::new("b").stage(r, 100, SimDuration::ZERO));
        let rep = sim.run().unwrap();
        // a holds the resource only 1s; b finishes at 2s even though a
        // completes at 6s.
        assert_eq!(rep.finish_time(b).as_secs_f64(), 2.0);
        assert_eq!(rep.finish_time(a).as_secs_f64(), 6.0);
        assert_eq!(rep.makespan().as_secs_f64(), 6.0);
    }

    #[test]
    fn release_time_honored() {
        let mut sim = Simulation::new();
        let r = sim.add_resource("r", bw(100.0));
        let a = sim.add_activity(
            Activity::new("a")
                .release_at(SimTime::from_nanos(5_000_000_000))
                .stage(r, 100, SimDuration::ZERO),
        );
        let rep = sim.run().unwrap();
        assert_eq!(rep.start_time(a).as_secs_f64(), 5.0);
        assert_eq!(rep.finish_time(a).as_secs_f64(), 6.0);
    }

    #[test]
    fn zero_stage_activity_is_a_barrier() {
        let mut sim = Simulation::new();
        let barrier = sim.add_activity(Activity::new("barrier"));
        let rep = sim.run().unwrap();
        assert_eq!(rep.finish_time(barrier), SimTime::ZERO);
    }

    #[test]
    fn cycle_detected_as_deadlock() {
        let mut sim = Simulation::new();
        let a = sim.add_activity(Activity::new("a"));
        let b = sim.add_activity(Activity::new("b"));
        sim.add_dep(a, b);
        sim.add_dep(b, a);
        match sim.run() {
            Err(SimError::Deadlock { stuck }) => {
                assert_eq!(stuck.len(), 2);
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn dependency_release_interplay() {
        let mut sim = Simulation::new();
        let r = sim.add_resource("r", bw(100.0));
        let a = sim.add_activity(Activity::new("a").stage(r, 100, SimDuration::ZERO));
        // b depends on a (done at 1s) but is also released only at 10s.
        let b = sim.add_activity(
            Activity::new("b")
                .release_at(SimTime::from_nanos(10_000_000_000))
                .stage(r, 100, SimDuration::ZERO),
        );
        sim.add_dep(a, b);
        let rep = sim.run().unwrap();
        assert_eq!(rep.start_time(b).as_secs_f64(), 10.0);
        assert_eq!(rep.finish_time(b).as_secs_f64(), 11.0);
    }

    #[test]
    fn determinism_same_graph_same_schedule() {
        let build = || {
            let mut sim = Simulation::new();
            let r1 = sim.add_resource("r1", bw(123.0));
            let r2 = sim.add_resource("r2", bw(321.0));
            let mut ids = Vec::new();
            for i in 0..50u64 {
                let res = if i % 2 == 0 { r1 } else { r2 };
                ids.push(sim.add_activity(Activity::new(format!("a{i}")).stage(
                    res,
                    100 + i * 13,
                    SimDuration::from_nanos(i),
                )));
            }
            for w in ids.windows(3) {
                sim.add_dep(w[0], w[2]);
            }
            (sim, ids)
        };
        let (s1, ids1) = build();
        let (s2, ids2) = build();
        let r1 = s1.run().unwrap();
        let r2 = s2.run().unwrap();
        for (x, y) in ids1.iter().zip(ids2.iter()) {
            assert_eq!(r1.finish_time(*x), r2.finish_time(*y));
        }
        assert_eq!(r1.makespan(), r2.makespan());
    }

    #[test]
    #[should_panic(expected = "unknown resource")]
    fn unknown_resource_panics() {
        let mut sim = Simulation::new();
        sim.add_activity(Activity::new("a").stage(ResourceId(7), 1, SimDuration::ZERO));
    }

    #[test]
    fn multi_slot_resource_parallelizes() {
        let mut sim = Simulation::new();
        let r = sim.add_resource_with_capacity("r", bw(100.0), 2);
        let a = sim.add_activity(Activity::new("a").stage(r, 100, SimDuration::ZERO));
        let b = sim.add_activity(Activity::new("b").stage(r, 100, SimDuration::ZERO));
        let c = sim.add_activity(Activity::new("c").stage(r, 100, SimDuration::ZERO));
        let rep = sim.run().unwrap();
        // Two slots: a and b in parallel (1s), c queued behind (2s).
        assert_eq!(rep.finish_time(a).as_secs_f64(), 1.0);
        assert_eq!(rep.finish_time(b).as_secs_f64(), 1.0);
        assert_eq!(rep.finish_time(c).as_secs_f64(), 2.0);
        // Aggregate service time exceeds the makespan.
        assert_eq!(rep.resource_usage(r).busy_time.as_secs_f64(), 3.0);
    }

    #[test]
    fn trace_records_service_intervals() {
        let mut sim = Simulation::new();
        sim.enable_trace();
        let r = sim.add_resource("r", bw(100.0));
        let a = sim.add_activity(Activity::new("first").stage(r, 100, SimDuration::ZERO));
        let b = sim.add_activity(Activity::new("second").stage(r, 100, SimDuration::ZERO));
        let rep = sim.run().unwrap();
        let trace = rep.trace().expect("tracing enabled");
        assert_eq!(trace.len(), 2);
        assert_eq!(trace[0].activity, a);
        assert_eq!(trace[0].start, SimTime::ZERO);
        assert_eq!(trace[1].activity, b);
        assert_eq!(trace[1].start.as_secs_f64(), 1.0);
        assert_eq!(trace[1].end.as_secs_f64(), 2.0);
        // Chrome trace renders both events with their labels.
        let json = rep.chrome_trace_json();
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains("\"first\""));
        assert!(json.contains("\"second\""));
        assert!(json.contains("\"ph\":\"X\""));
    }

    #[test]
    fn trace_absent_when_disabled() {
        let mut sim = Simulation::new();
        let r = sim.add_resource("r", bw(100.0));
        sim.add_activity(Activity::new("a").stage(r, 100, SimDuration::ZERO));
        let rep = sim.run().unwrap();
        assert!(rep.trace().is_none());
        assert_eq!(rep.chrome_trace_json(), "[]");
    }

    #[test]
    fn engine_stats_count_events_and_depth() {
        let mut sim = Simulation::new();
        let r = sim.add_resource("r", bw(100.0));
        for i in 0..8 {
            sim.add_activity(Activity::new(format!("a{i}")).stage(r, 100, SimDuration::ZERO));
        }
        let rep = sim.run().unwrap();
        let es = rep.engine_stats();
        assert!(
            es.events_processed >= 16,
            "8 Ready + 8 StageServed at least"
        );
        assert!(es.max_queue_depth >= 7, "ready events pile up at t=0");
        assert_eq!(es.queue_depth.count(), es.events_processed);
    }

    #[test]
    fn record_into_registry_exports_resources() {
        let mut sim = Simulation::new();
        let r = sim.add_resource("node0.nic_tx", bw(100.0));
        sim.add_activity(Activity::new("a").stage(r, 100, SimDuration::ZERO));
        sim.add_activity(Activity::new("b").stage(r, 300, SimDuration::ZERO));
        let rep = sim.run().unwrap();
        let reg = Registry::new();
        rep.record_into(&reg);
        let labels = &[("resource", "node0.nic_tx")][..];
        assert_eq!(reg.counter_value("des.resource.bytes", labels), 400);
        assert_eq!(reg.counter_value("des.resource.jobs", labels), 2);
        assert_eq!(
            reg.counter_value("des.resource.busy_ns", labels),
            4_000_000_000
        );
        let snap = reg.snapshot();
        // One wait histogram per resource, one observation per job.
        let wait = snap
            .histograms
            .iter()
            .find(|h| h.name == "des.resource.wait_ns")
            .expect("wait histogram recorded");
        assert_eq!(wait.count, 2);
        assert!(snap.counter("des.engine.events", &[]).unwrap() > 0);
    }

    #[test]
    fn trace_into_unifies_lanes() {
        let mut sim = Simulation::new();
        sim.enable_trace();
        let r1 = sim.add_resource("r1", bw(100.0));
        let r2 = sim.add_resource("r2", bw(100.0));
        sim.add_activity(Activity::new("a").stage(r1, 100, SimDuration::ZERO));
        sim.add_activity(Activity::new("b").stage(r2, 200, SimDuration::ZERO));
        let rep = sim.run().unwrap();
        let tc = TraceCollector::new();
        rep.trace_into(&tc, 7);
        let spans = tc.spans();
        assert_eq!(spans.len(), 2);
        assert!(spans.iter().all(|s| s.pid == 7));
        assert_eq!(spans[0].tid, 0);
        assert_eq!(spans[1].tid, 1);
        // Without tracing enabled, trace_into is a no-op.
        let mut sim = Simulation::new();
        let r = sim.add_resource("r", bw(100.0));
        sim.add_activity(Activity::new("a").stage(r, 100, SimDuration::ZERO));
        let rep = sim.run().unwrap();
        let tc = TraceCollector::new();
        rep.trace_into(&tc, 0);
        assert!(tc.is_empty());
    }

    #[test]
    fn busy_time_accounting() {
        let mut sim = Simulation::new();
        let r = sim.add_resource("r", bw(100.0));
        for i in 0..4 {
            sim.add_activity(Activity::new(format!("a{i}")).stage(r, 100, SimDuration::ZERO));
        }
        let rep = sim.run().unwrap();
        let u = rep.resource_usage(r);
        assert_eq!(u.busy_time.as_secs_f64(), 4.0);
        assert_eq!(u.bytes_served, 400);
        // Fully utilized.
        assert!((u.utilization(rep.makespan().saturating_since(SimTime::ZERO)) - 1.0).abs() < 1e-9);
    }
}
