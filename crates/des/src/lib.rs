//! # mcio-des — deterministic discrete-event simulation engine
//!
//! A small, dependency-free discrete-event simulation (DES) core used by the
//! memory-conscious collective I/O reproduction to model an extreme-scale
//! machine: network interfaces, per-node memory buses, and parallel file
//! system servers are all **bandwidth resources**, and the work a collective
//! I/O operation performs is an **activity graph** — activities with
//! precedence dependencies, each passing through an ordered sequence of
//! resource stages (store-and-forward).
//!
//! Each resource serves under a [`SharePolicy`]: classic FIFO queueing (one
//! event per job), or amortized fair sharing, where all admitted transfers
//! progress concurrently and the engine keeps a single next-completion
//! event per resource, re-predicted via indexed cancellation on every
//! arrival and departure — event volume then scales with
//! arrivals/departures instead of in-flight requests, which is what makes
//! full-machine exascale runs tractable.
//!
//! The engine is fully deterministic under both policies: ties in the event
//! queue are broken by insertion sequence number, FIFO queues are strict
//! FIFO, and fair-share ties break by admission order. Running the same
//! activity graph twice yields bit-identical schedules, which the test
//! suite relies on.
//!
//! ## Model
//!
//! * A [`Resource`] serves one job at a time at a fixed [`Bandwidth`]; a job
//!   occupying it for `overhead + bytes / bandwidth`.
//! * An [`Activity`] is a sequence of [`Stage`]s. A stage names a resource,
//!   a byte count and a fixed overhead, plus an optional *latency* that the
//!   activity waits out **after** leaving the resource without occupying
//!   anything (wire/propagation delay).
//! * Activities may depend on other activities; an activity becomes ready
//!   when all its dependencies have completed and its release time passed.
//! * An activity with no stages is a pure synchronization point (a barrier
//!   or join node).
//!
//! ## Example
//!
//! ```
//! use mcio_des::{Simulation, Activity, Bandwidth, SimDuration};
//!
//! let mut sim = Simulation::new();
//! let link = sim.add_resource("link", Bandwidth::bytes_per_sec(1_000_000.0));
//! // Two 1 MB transfers contend for the same 1 MB/s link.
//! let a = sim.add_activity(Activity::new("a").stage(link, 1_000_000, SimDuration::ZERO));
//! let b = sim.add_activity(Activity::new("b").stage(link, 1_000_000, SimDuration::ZERO));
//! let done = sim.add_activity(Activity::new("join"));
//! sim.add_dep(a, done);
//! sim.add_dep(b, done);
//! let report = sim.run().unwrap();
//! assert_eq!(report.makespan().as_secs_f64(), 2.0);
//! ```

#![warn(missing_docs)]

pub mod activity;
pub mod engine;
pub mod resource;
pub mod stats;
pub mod time;

pub use activity::{Activity, ActivityId, Stage};
pub use engine::{
    resource_class, EngineProfile, EngineStats, RunReport, ServiceRecord, SimError, Simulation,
};
pub use resource::{Bandwidth, Resource, ResourceId, ResourceUsage, ServiceWindow, SharePolicy};
pub use stats::OnlineStats;
pub use time::{SimDuration, SimTime};
