//! Simulated time: nanosecond-resolution instants and durations.
//!
//! Instants ([`SimTime`]) and durations ([`SimDuration`]) are separate
//! newtypes over `u64` nanoseconds so the type system catches
//! instant-plus-instant mistakes. Both saturate rather than wrap on
//! overflow: a simulation that reaches `u64::MAX` nanoseconds (~584 years)
//! is already meaningless, and saturation keeps arithmetic total.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant in simulated time, in nanoseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Raw nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration elapsed since `earlier`; zero if `earlier` is later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// The earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us.saturating_mul(1_000))
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms.saturating_mul(1_000_000))
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s.saturating_mul(1_000_000_000))
    }

    /// Construct from fractional seconds. Negative and non-finite inputs
    /// clamp to zero; values beyond the representable range clamp to
    /// [`SimDuration::MAX`].
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return SimDuration::ZERO;
        }
        let ns = s * 1e9;
        if ns >= u64::MAX as f64 {
            SimDuration::MAX
        } else {
            SimDuration(ns as u64)
        }
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// True when the duration is exactly zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The longer of two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// The shorter of two durations.
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }

    /// Saturating difference between durations.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs.max(1))
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", SimDuration(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", ns as f64 / 1e9)
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimDuration::from_secs(2).as_nanos(), 2_000_000_000);
        assert_eq!(SimDuration::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(SimDuration::from_micros(5).as_nanos(), 5_000);
        assert_eq!(SimDuration::from_nanos(7).as_nanos(), 7);
    }

    #[test]
    fn from_secs_f64_clamps() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(1e30), SimDuration::MAX);
        assert_eq!(SimDuration::from_secs_f64(1.5).as_nanos(), 1_500_000_000);
    }

    #[test]
    fn instant_arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_secs(1);
        assert_eq!(t.as_nanos(), 1_000_000_000);
        assert_eq!(t.saturating_since(SimTime::ZERO), SimDuration::from_secs(1));
        // Saturates instead of panicking.
        assert_eq!(SimTime::ZERO.saturating_since(t), SimDuration::ZERO);
        assert_eq!(SimTime::MAX + SimDuration::from_secs(1), SimTime::MAX);
    }

    #[test]
    fn duration_arithmetic_saturates() {
        assert_eq!(
            SimDuration::MAX + SimDuration::from_secs(1),
            SimDuration::MAX
        );
        assert_eq!(
            SimDuration::from_secs(1).saturating_sub(SimDuration::from_secs(2)),
            SimDuration::ZERO
        );
        assert_eq!(SimDuration::from_secs(1) * 3, SimDuration::from_secs(3));
        assert_eq!(SimDuration::from_secs(4) / 2, SimDuration::from_secs(2));
        // Division by zero is treated as division by one.
        assert_eq!(SimDuration::from_secs(4) / 0, SimDuration::from_secs(4));
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", SimDuration::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", SimDuration::from_micros(12)), "12.000us");
        assert_eq!(format!("{}", SimDuration::from_millis(12)), "12.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(12)), "12.000s");
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_secs).sum();
        assert_eq!(total, SimDuration::from_secs(10));
    }
}
