//! Differential harness for the fair-sharing resource engine.
//!
//! Three pillars:
//!
//! 1. **FIFO equivalence** — on workloads where no resource ever holds
//!    more transfers than its slot count, the fair-share engine must
//!    reproduce the FIFO engine *exactly*: same finish times, same
//!    usage accounting, and (when resources are strictly unshared) the
//!    same event stream byte for byte.
//! 2. **Reference-model agreement** — under real contention, finish
//!    times must track a brute-force fluid processor-sharing simulator
//!    to within the engine's nanosecond-ceiling rounding.
//! 3. **Engine invariants** — indexed cancellation never loses or
//!    double-fires an event (`events_scheduled == events_processed +
//!    events_cancelled`, one completion per activity), cancellations
//!    are exactly the arrivals that found a non-empty active set, and
//!    work is conserved (`busy_time` equals total nominal demand).

use mcio_des::{Activity, Bandwidth, ServiceWindow, SharePolicy, SimDuration, SimTime, Simulation};
use proptest::prelude::*;

fn bw(bps: f64) -> Bandwidth {
    Bandwidth::bytes_per_sec(bps)
}

fn secs(s: u64) -> SimTime {
    SimTime::from_nanos(s * 1_000_000_000)
}

// ---------------------------------------------------------------------------
// Pillar 1: FIFO equivalence.
// ---------------------------------------------------------------------------

/// Build `chains` serial chains of `len` single-stage activities, chain
/// `i` owning resource `i` exclusively. No resource is ever shared, so
/// both engines must produce identical runs.
fn unshared_workload(
    policy: SharePolicy,
    chains: usize,
    len: usize,
    seed: u64,
) -> (Simulation, Vec<mcio_des::ActivityId>) {
    let mut sim = Simulation::with_policy(policy);
    sim.enable_trace();
    let mut state = seed | 1;
    let mut rng = move || {
        // xorshift64: deterministic, dependency-free.
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut ids = Vec::new();
    for c in 0..chains {
        let r = sim.add_resource(format!("r{c}"), bw(1e9));
        let mut prev = None;
        for j in 0..len {
            let bytes = rng() % 10_000;
            let overhead = SimDuration::from_nanos(rng() % 1_000);
            let a = sim.add_activity(Activity::new(format!("c{c}a{j}")).stage(r, bytes, overhead));
            if let Some(p) = prev {
                sim.add_dep(p, a);
            }
            prev = Some(a);
            ids.push(a);
        }
    }
    (sim, ids)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Claim (a) of the differential harness: with no sharing, the two
    /// engines produce the same run — finish times, resource usage
    /// (including both high-water marks and the wait histogram), the
    /// rendered chrome trace, and even the engine event stream
    /// (identical event counts, zero cancellations, identical heap
    /// depth distribution).
    #[test]
    fn unshared_workloads_are_byte_identical_across_engines(
        chains in 1usize..6,
        len in 1usize..8,
        seed in 1u64..u64::MAX,
    ) {
        let (sim_f, ids) = unshared_workload(SharePolicy::Fifo, chains, len, seed);
        let (sim_p, _) = unshared_workload(SharePolicy::FairShare, chains, len, seed);
        let fifo = sim_f.run().unwrap();
        let fair = sim_p.run().unwrap();
        prop_assert_eq!(fifo.makespan(), fair.makespan());
        for &a in &ids {
            prop_assert_eq!(fifo.finish_time(a), fair.finish_time(a));
            prop_assert_eq!(fifo.start_time(a), fair.start_time(a));
        }
        prop_assert_eq!(fifo.resource_usages(), fair.resource_usages());
        prop_assert_eq!(fifo.engine_stats(), fair.engine_stats());
        prop_assert_eq!(fifo.engine_stats().events_cancelled, 0);
        prop_assert_eq!(fifo.chrome_trace_json(), fair.chrome_trace_json());
        prop_assert_eq!(fifo.class_max_queues(), fair.class_max_queues());
    }

    /// Stronger than unshared: as long as a resource's active set never
    /// exceeds its slot count, every transfer gets a full share and the
    /// fair engine's finish times match FIFO bit for bit (the event
    /// streams differ — fair re-predicts — but the physics agree).
    #[test]
    fn within_capacity_contention_matches_fifo_exactly(
        jobs in 1usize..5,
        seed in 1u64..u64::MAX,
    ) {
        // `jobs` concurrent transfers on a capacity-`jobs` resource.
        let build = |policy| {
            let mut sim = Simulation::with_policy(policy);
            let r = sim.add_resource_with_capacity("r", bw(1e9), jobs);
            let mut ids = Vec::new();
            for j in 0..jobs {
                let bytes = (seed % 50_000) + j as u64 * 977;
                ids.push(sim.add_activity(Activity::new(format!("a{j}")).stage(
                    r,
                    bytes,
                    SimDuration::from_nanos(seed % 503),
                )));
            }
            (sim, ids)
        };
        let (sim_f, ids) = build(SharePolicy::Fifo);
        let (sim_p, _) = build(SharePolicy::FairShare);
        let fifo = sim_f.run().unwrap();
        let fair = sim_p.run().unwrap();
        prop_assert_eq!(fifo.makespan(), fair.makespan());
        for &a in &ids {
            prop_assert_eq!(fifo.finish_time(a), fair.finish_time(a));
        }
        let (uf, ua) = (&fifo.resource_usages()[0], &fair.resource_usages()[0]);
        prop_assert_eq!(uf.busy_time, ua.busy_time);
        prop_assert_eq!(uf.bytes_served, ua.bytes_served);
        prop_assert_eq!(uf.max_active, ua.max_active);
        prop_assert_eq!(uf.max_queue_len, ua.max_queue_len);
    }
}

// ---------------------------------------------------------------------------
// Pillar 2: brute-force fluid reference.
// ---------------------------------------------------------------------------

/// Brute-force fluid processor-sharing reference for a single resource:
/// each active transfer progresses at `min(n, cap)/n` of the nominal
/// rate; the simulator advances between arrival/completion events in
/// exact f64 arithmetic. Returns fluid finish times in nanoseconds,
/// indexed like `jobs`.
fn ps_reference(jobs: &[(u64, f64)], cap: usize) -> Vec<f64> {
    let n = jobs.len();
    let mut remaining: Vec<f64> = jobs.iter().map(|&(_, d)| d).collect();
    let mut finish = vec![f64::NAN; n];
    let mut active: Vec<usize> = Vec::new();
    let mut arrivals: Vec<usize> = (0..n).collect();
    arrivals.sort_by_key(|&i| jobs[i].0);
    let mut next_arrival = 0usize;
    let mut t = 0.0f64;
    while active.len() + (n - next_arrival) > 0 {
        if active.is_empty() {
            let i = arrivals[next_arrival];
            t = t.max(jobs[i].0 as f64);
            active.push(i);
            next_arrival += 1;
            continue;
        }
        let share = (active.len().min(cap)) as f64 / active.len() as f64;
        let (pos, head) = active
            .iter()
            .enumerate()
            .min_by(|a, b| remaining[*a.1].partial_cmp(&remaining[*b.1]).unwrap())
            .map(|(p, &i)| (p, i))
            .unwrap();
        let t_done = t + remaining[head] / share;
        let t_next = arrivals.get(next_arrival).map(|&i| jobs[i].0 as f64);
        match t_next {
            Some(ta) if ta < t_done => {
                let span = ta - t;
                for &i in &active {
                    remaining[i] -= span * share;
                }
                active.push(arrivals[next_arrival]);
                next_arrival += 1;
                t = ta;
            }
            _ => {
                let span = t_done - t;
                for &i in &active {
                    remaining[i] -= span * share;
                }
                finish[head] = t_done;
                active.swap_remove(pos);
                t = t_done;
            }
        }
    }
    finish
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Claim (c): on random single-resource workloads the engine's
    /// finish times agree with the brute-force fluid reference to
    /// within the accumulated nanosecond-ceiling rounding (each
    /// completion event lands on a whole nanosecond, nudging later
    /// fluid completions by strictly less than 1 ns each).
    #[test]
    fn fair_engine_agrees_with_fluid_reference(
        njobs in 1usize..10,
        cap in 1usize..4,
        seed in 1u64..u64::MAX,
    ) {
        let mut state = seed | 1;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        // Nominal rate 1 byte/ns so demand_ns == bytes + overhead_ns.
        let mut sim = Simulation::with_policy(SharePolicy::FairShare);
        let r = sim.add_resource_with_capacity("r", bw(1e9), cap);
        let mut jobs = Vec::with_capacity(njobs);
        let mut ids = Vec::with_capacity(njobs);
        for j in 0..njobs {
            let arrive = rng() % 5_000;
            let bytes = 1 + rng() % 20_000;
            let overhead = rng() % 700;
            jobs.push((arrive, (bytes + overhead) as f64));
            ids.push(sim.add_activity(
                Activity::new(format!("a{j}"))
                    .release_at(SimTime::from_nanos(arrive))
                    .stage(r, bytes, SimDuration::from_nanos(overhead)),
            ));
        }
        let rep = sim.run().unwrap();
        let reference = ps_reference(&jobs, cap);
        // Tolerance: one ceiling per completion event that precedes the
        // job, plus one for its own ceiling.
        let tol = njobs as f64 + 1.0;
        for (j, &a) in ids.iter().enumerate() {
            let got = rep.finish_time(a).as_nanos() as f64;
            prop_assert!(
                (got - reference[j]).abs() <= tol,
                "job {} finished at {} ns, fluid reference {} ns (tol {})",
                j, got, reference[j], tol
            );
        }
    }

    /// Engine invariants under random contention: exactly one
    /// completion per activity (a cancelled event firing would
    /// double-complete and panic the debug asserts), the cancellation
    /// ledger balances (`scheduled == processed + cancelled`),
    /// cancellations are *exactly* the arrivals that found a non-empty
    /// active set, work is conserved (`busy_time` equals total demand
    /// up to per-event rounding), and the heap high-water mark stays
    /// within its provable bounds after slot pooling.
    #[test]
    fn contention_invariants_and_cancellation_ledger(
        njobs in 2usize..12,
        cap in 1usize..3,
        seed in 1u64..u64::MAX,
    ) {
        let mut state = seed | 1;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut sim = Simulation::with_policy(SharePolicy::FairShare);
        let r = sim.add_resource_with_capacity("r", bw(1e9), cap);
        let mut jobs = Vec::with_capacity(njobs);
        for j in 0..njobs {
            let arrive = rng() % 4_000;
            let bytes = 1 + rng() % 9_000;
            jobs.push((arrive, bytes as f64));
            sim.add_activity(
                Activity::new(format!("a{j}"))
                    .release_at(SimTime::from_nanos(arrive))
                    .stage(r, bytes, SimDuration::ZERO),
            );
        }
        let rep = sim.run().unwrap();
        let es = rep.engine_stats();
        prop_assert_eq!(
            es.events_scheduled,
            es.events_processed + es.events_cancelled
        );
        prop_assert_eq!(es.queue_depth.count(), es.events_processed);
        // Replay the fluid reference to count arrivals that found a
        // non-empty active set — each retracts one stale prediction.
        let reference = ps_reference(&jobs, cap);
        let mut expected_cancels = 0u64;
        for (j, &(arrive, _)) in jobs.iter().enumerate() {
            let actives = jobs
                .iter()
                .enumerate()
                .filter(|&(k, &(ka, _))| k != j && ka <= arrive && reference[k] > arrive as f64)
                .count();
            if actives > 0 {
                expected_cancels += 1;
            }
        }
        prop_assert_eq!(es.events_cancelled, expected_cancels);
        // Work conservation: the slot-time integral equals total
        // demand, up to one nanosecond of ceiling per event boundary.
        let u = &rep.resource_usages()[0];
        let total_demand: f64 = jobs.iter().map(|&(_, d)| d).sum();
        let slack = (njobs * cap) as f64 + 1.0;
        prop_assert!(
            (u.busy_time.as_nanos() as f64 - total_demand).abs() <= slack,
            "busy {} ns vs demand {} ns (slack {})",
            u.busy_time.as_nanos(), total_demand, slack
        );
        prop_assert_eq!(u.jobs_served, njobs as u64);
        prop_assert_eq!(u.wait_hist.count(), njobs as u64);
        // Heap high-water: bounded below by the seed burst (all Ready
        // events coexist before the first pop) and above by everything
        // ever scheduled — slot pooling must not corrupt either bound.
        prop_assert!(es.max_queue_depth as u64 <= es.events_scheduled);
        prop_assert!(es.max_queue_depth + 1 >= njobs);
    }
}

// ---------------------------------------------------------------------------
// Pillar 3: hand-computed pins (windows, zero-service, counters).
// ---------------------------------------------------------------------------

/// Two equal transfers through an `ost_slow`-shaped window (half rate
/// for the whole run): each holds a half share of a half-speed server,
/// so both finish at 4× their solo time. Hand-computed: 100 B at
/// 100 B/s is 1 s solo; shared and slowed it completes at t = 4 s.
#[test]
fn fair_share_under_ost_slow_window_pins() {
    let mut sim = Simulation::with_policy(SharePolicy::FairShare);
    let r = sim.add_resource("ost0", bw(100.0));
    sim.set_service_windows(
        r,
        vec![ServiceWindow {
            start: SimTime::ZERO,
            end: secs(100),
            rate: 0.5,
        }],
    );
    let a = sim.add_activity(Activity::new("a").stage(r, 100, SimDuration::ZERO));
    let b = sim.add_activity(Activity::new("b").stage(r, 100, SimDuration::ZERO));
    let rep = sim.run().unwrap();
    assert_eq!(rep.finish_time(a), secs(4));
    assert_eq!(rep.finish_time(b), secs(4));
}

/// Two equal transfers with an `ost_stall`-shaped window (rate 0 on
/// [1 s, 2 s)): they would drain at 2 s unshared-rate-equivalent; the
/// stall freezes one second of progress, pushing both to 3 s.
/// Hand-computed: each needs 1 s of demand at a half share → 2 s of
/// wall time at full rate; progress runs [0,1) and [2,3) around the
/// stall, so completion lands at t = 3 s.
#[test]
fn fair_share_under_ost_stall_window_pins() {
    let mut sim = Simulation::with_policy(SharePolicy::FairShare);
    let r = sim.add_resource("ost0", bw(100.0));
    sim.set_service_windows(
        r,
        vec![ServiceWindow {
            start: secs(1),
            end: secs(2),
            rate: 0.0,
        }],
    );
    let a = sim.add_activity(Activity::new("a").stage(r, 100, SimDuration::ZERO));
    let b = sim.add_activity(Activity::new("b").stage(r, 100, SimDuration::ZERO));
    let rep = sim.run().unwrap();
    assert_eq!(rep.finish_time(a), secs(3));
    assert_eq!(rep.finish_time(b), secs(3));
}

/// A late arrival during a stall: A (100 B) arrives at t = 0, a stall
/// covers [0.5 s, 1.5 s), B (50 B) arrives at 0.5 s. Hand-computed:
/// A progresses 0.5 s of demand before the stall; during the stall
/// nothing moves; from 1.5 s both share the server at half rate each.
/// A's remaining 0.5 s of demand takes 1 s → done at 2.5 s; B's 0.5 s
/// of demand also takes 1 s → done at 2.5 s.
#[test]
fn fair_share_stall_with_late_arrival_pins() {
    let mut sim = Simulation::with_policy(SharePolicy::FairShare);
    let r = sim.add_resource("ost0", bw(100.0));
    sim.set_service_windows(
        r,
        vec![ServiceWindow {
            start: SimTime::from_nanos(500_000_000),
            end: SimTime::from_nanos(1_500_000_000),
            rate: 0.0,
        }],
    );
    let a = sim.add_activity(Activity::new("a").stage(r, 100, SimDuration::ZERO));
    let b = sim.add_activity(
        Activity::new("b")
            .release_at(SimTime::from_nanos(500_000_000))
            .stage(r, 50, SimDuration::ZERO),
    );
    let rep = sim.run().unwrap();
    assert_eq!(rep.finish_time(a), SimTime::from_nanos(2_500_000_000));
    assert_eq!(rep.finish_time(b), SimTime::from_nanos(2_500_000_000));
}

/// The same stall scenarios must agree between engines when only one
/// transfer is present — the FIFO `ServiceWindow` arithmetic is the
/// reference the fair path's `integrate_done` refactor must not move.
#[test]
fn single_transfer_window_walk_is_engine_invariant() {
    for windows in [
        vec![ServiceWindow {
            start: secs(1),
            end: secs(5),
            rate: 0.0,
        }],
        vec![ServiceWindow {
            start: SimTime::ZERO,
            end: secs(100),
            rate: 0.25,
        }],
        vec![
            ServiceWindow {
                start: SimTime::from_nanos(200_000_000),
                end: SimTime::from_nanos(700_000_000),
                rate: 0.5,
            },
            ServiceWindow {
                start: secs(1),
                end: secs(2),
                rate: 0.0,
            },
        ],
    ] {
        let run = |policy| {
            let mut sim = Simulation::with_policy(policy);
            let r = sim.add_resource("ost0", bw(100.0));
            sim.set_service_windows(r, windows.clone());
            let a = sim.add_activity(Activity::new("a").stage(r, 150, SimDuration::ZERO));
            let rep = sim.run().unwrap();
            rep.finish_time(a)
        };
        assert_eq!(
            run(SharePolicy::Fifo),
            run(SharePolicy::FairShare),
            "windows {windows:?}"
        );
    }
}

/// Satellite 6 regression: a zero-byte, zero-overhead stage admitted
/// mid-stall completes at its admission instant under BOTH engines —
/// an empty transfer has nothing to wait for.
#[test]
fn zero_service_stage_completes_at_admission_even_in_a_stall() {
    for policy in [SharePolicy::Fifo, SharePolicy::FairShare] {
        let mut sim = Simulation::with_policy(policy);
        let r = sim.add_resource("ost0", bw(100.0));
        sim.set_service_windows(
            r,
            vec![ServiceWindow {
                start: SimTime::ZERO,
                end: secs(10),
                rate: 0.0,
            }],
        );
        let release = secs(2);
        let a = sim.add_activity(Activity::new("empty").release_at(release).stage(
            r,
            0,
            SimDuration::ZERO,
        ));
        let rep = sim.run().unwrap();
        assert_eq!(rep.finish_time(a), release, "policy {policy:?}");
    }
}

/// Satellite 3 pin: the two high-water marks mean the same thing under
/// both engines. Three simultaneous jobs on a one-slot resource:
/// FIFO serves one at a time (`max_active` 1, two waiting), fair
/// admits all three (`max_active` 3) with the same two beyond the slot
/// count. `class_max_queues` reports the *active-set* high-water.
#[test]
fn queue_counter_semantics_pinned() {
    let build = |policy| {
        let mut sim = Simulation::with_policy(policy);
        let r = sim.add_resource("node0.membus", bw(1e9));
        for j in 0..3 {
            sim.add_activity(Activity::new(format!("a{j}")).stage(r, 1000, SimDuration::ZERO));
        }
        sim.run().unwrap()
    };
    let fifo = build(SharePolicy::Fifo);
    let fair = build(SharePolicy::FairShare);

    let uf = &fifo.resource_usages()[0];
    assert_eq!(uf.max_active, 1);
    assert_eq!(uf.max_queue_len, 2);
    assert_eq!(uf.wait_hist.count(), 3);
    assert_eq!(fifo.class_max_queues(), vec![("membus".to_string(), 1)]);
    assert_eq!(
        fifo.engine_profile().class_max_queue,
        fifo.class_max_queues()
    );

    let ua = &fair.resource_usages()[0];
    assert_eq!(ua.max_active, 3);
    assert_eq!(ua.max_queue_len, 2);
    assert_eq!(ua.wait_hist.count(), 3);
    assert_eq!(fair.class_max_queues(), vec![("membus".to_string(), 3)]);
    assert_eq!(
        fair.engine_profile().class_max_queue,
        fair.class_max_queues()
    );

    // Both engines deliver the same aggregate service and bytes.
    assert_eq!(uf.busy_time, ua.busy_time);
    assert_eq!(uf.bytes_served, ua.bytes_served);
    assert_eq!(uf.jobs_served, ua.jobs_served);
}

/// Claim (d) at the engine level: the same seeded workload replays to
/// byte-identical reports under fair sharing — finish times, engine
/// stats (including the heap-depth histogram), and the rendered trace.
#[test]
fn seeded_replay_is_deterministic_under_fair_sharing() {
    let build = || {
        let mut sim = Simulation::with_policy(SharePolicy::FairShare);
        sim.enable_trace();
        let r1 = sim.add_resource("node0.membus", bw(2e9));
        let r2 = sim.add_resource_with_capacity("ost0", bw(5e8), 2);
        let mut prev = None;
        for j in 0..40u64 {
            let a = sim.add_activity(
                Activity::new(format!("a{j}"))
                    .release_at(SimTime::from_nanos(j * 37))
                    .stage(r1, 100 + j * 13, SimDuration::from_nanos(j % 7))
                    .stage(r2, 50 + j * 11, SimDuration::from_nanos(j % 5)),
            );
            if j % 3 == 0 {
                if let Some(p) = prev {
                    sim.add_dep(p, a);
                }
            }
            prev = Some(a);
        }
        sim.run().unwrap()
    };
    let x = build();
    let y = build();
    assert_eq!(x.makespan(), y.makespan());
    assert_eq!(x.engine_stats(), y.engine_stats());
    assert_eq!(x.resource_usages(), y.resource_usages());
    assert_eq!(x.chrome_trace_json(), y.chrome_trace_json());
    assert_eq!(x.engine_profile(), y.engine_profile());
    // Fair sharing genuinely engaged: re-predictions happened.
    assert!(x.engine_stats().events_cancelled > 0);
}

/// Event-pool stress: many short generations of fair transfers force
/// heavy slot recycling; the pool must keep the heap high-water near
/// the *concurrent* event count, far below the total scheduled.
#[test]
fn event_pool_bounds_heap_high_water_under_churn() {
    let mut sim = Simulation::with_policy(SharePolicy::FairShare);
    let r = sim.add_resource("r", bw(1e9));
    // 200 serial waves of 2 concurrent transfers each.
    let mut prev: Option<mcio_des::ActivityId> = None;
    for w in 0..200u64 {
        let a =
            sim.add_activity(Activity::new(format!("w{w}a")).stage(r, 1000 + w, SimDuration::ZERO));
        let b =
            sim.add_activity(Activity::new(format!("w{w}b")).stage(r, 900 + w, SimDuration::ZERO));
        if let Some(p) = prev {
            sim.add_dep(p, a);
            sim.add_dep(p, b);
        }
        prev = Some(a);
    }
    let rep = sim.run().unwrap();
    let es = rep.engine_stats();
    assert_eq!(
        es.events_scheduled,
        es.events_processed + es.events_cancelled
    );
    assert!(es.events_cancelled >= 200, "every wave re-predicts");
    // The wave structure keeps true concurrency tiny; cancelled heap
    // entries linger only until popped, so the high-water must stay at
    // a small constant, not grow with the 1000+ total events.
    assert!(
        es.max_queue_depth < 64,
        "heap high-water {} should track concurrency, not total events",
        es.max_queue_depth
    );
}
